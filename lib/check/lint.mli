(** Rule-based IR linter.

    Structural hygiene checks over a single CFG, independent of any
    transformation: branch targets must resolve to layout blocks, every
    block should be reachable, loops should be natural (reducible),
    registers read before any definition on some path are suspicious,
    definitions nothing ever reads are suspicious, stores provably
    overwritten before anything could read them are suspicious
    ([lint.dead-store], proved with the checker-side affine address
    analysis {!Addrcheck}), and spill code must follow the allocator's
    slot discipline. Hard malformations are [Error]s; heuristic
    findings are [Warning]s. *)

val run :
  ?prov:Gis_obs.Provenance.t ->
  ?staged_slots:int list ->
  ?stage:string ->
  Gis_ir.Cfg.t ->
  Diagnostic.t list
(** [stage] tags the diagnostics (default ["lint"]). [prov] enables the
    spill-discipline rules over [Spill_inserted] records;
    [staged_slots] lists slot offsets the caller pre-stages at entry
    ({!Gis_regalloc.Regalloc.staged_slots}), exempt from the
    orphan-reload rule. *)
