(** Independent dependence reconstruction for translation validation.

    The checker never trusts the scheduler's own DDG: it rebuilds the
    flow/anti/output/memory dependences of a program from scratch (the
    paper's Section 4 dependence rules, mirroring [lib/ddg]'s
    disambiguation) over a whole-CFG forward view with DFS back edges
    masked, and offers an order oracle over a second (transformed)
    program so a stage's output can be checked against its input. *)

open Gis_ir

type kind = Flow | Anti | Output | Mem

val pp_kind : kind Fmt.t

type dep = {
  d_src : int;  (** uid that must come first *)
  d_dst : int;  (** uid that must come second *)
  d_kind : kind;
  d_reg : Reg.t option;  (** the register for a data dependence *)
}

type program
(** A CFG indexed for checking: forward view (back edges masked),
    view-node reachability, uid -> (block, position) sites, and lazy
    reaching definitions. *)

val of_cfg : ?disambig:bool -> Cfg.t -> program
(** [disambig] (default [true]) enables the symbolic-address memory
    disambiguation during {!reconstruct}: Mem pairs whose bases
    {!Addrcheck} proves equal up to a known delta, with disjoint
    access ranges, and pairs of different memory families, produce no
    dependence. The analysis is the checker's own — it never consults
    the scheduler's [Gis_analysis.Symaddr] — so every edge the
    scheduler pruned is re-proved from this stage's input program. *)

val back_edges : Cfg.t -> (int * int) list
(** DFS back edges from the entry (block-id pairs) — the edges masked to
    obtain the forward view. *)

val cfg : program -> Cfg.t
val reaching : program -> Gis_analysis.Reaching.t

val uids : program -> Gis_util.Ints.Int_set.t
(** Uids of every instruction in layout blocks (bodies + terminators). *)

val instr : program -> int -> Instr.t option
val block_id_of_uid : program -> int -> int option
val block_label_of_uid : program -> int -> Label.t option
val pos_of_uid : program -> int -> int option
(** Position within the owning block; the terminator is last. *)

val block_reaches : program -> int -> int -> bool
(** [block_reaches p a b]: block [b] is reachable from block [a] along
    forward (back-edge-masked) CFG edges; reflexive. *)

val ordered : program -> src:int -> dst:int -> bool
(** Is [src] guaranteed to execute before [dst] on every forward path
    where both execute? True when they share a block with [src] earlier,
    or when [src]'s block strictly reaches [dst]'s block and not vice
    versa. *)

val reconstruct : program -> dep list
(** All dependences of the program: kill-sensitive intra-block scans
    plus pairwise inter-block edges over forward-reachable block pairs,
    with the same memory disambiguation as [Gis_ddg.Ddg] (memory
    families; same base register with the same scan version or single
    reaching definition, disjoint ranges; and, when [disambig] is on,
    {!Addrcheck}'s affine base deltas). *)

val still_conflicts : kind -> Instr.t -> Instr.t -> bool
(** Re-validate a reconstructed dependence against the *transformed*
    instructions: renaming during speculative motion may dissolve an
    anti/output/flow dependence, in which case the order need not be
    preserved. Memory dependences always survive. *)
