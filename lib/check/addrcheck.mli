(** The checker's own symbolic address analysis.

    [Gis_analysis.Symaddr] tells the scheduler which Mem edges it may
    prune; this module re-proves those prunings at verification time
    without sharing a line of code with it. It is written against the
    same abstract-domain specification — base values in the flat
    lattice [Num k | Ref (definition instance, k) | Any], affine
    transfer through [Load_imm]/[Move]/add-sub-with-known-constant
    (including [update] post-increments), fresh instance per opaque
    definition, equality-or-Any join — but from an independent
    implementation: registers are interned to dense indices, block
    environments are flat arrays, and the fixpoint runs on a
    {!Gis_util.Fix.Worklist} instead of repeated layout sweeps. The
    two must agree in precision (a weaker checker would reject legal
    schedules); they must never share defect modes (hence no code
    sharing, and no fault-injection hook on this side — an over-claim
    injected into [Symaddr] is exactly what this module exists to
    catch). *)

type av =
  | Num of int  (** a known constant *)
  | Ref of { def : int; reg : int; add : int }
      (** the value produced by definition instance ([def], [reg]) —
          instruction uid and {!Gis_ir.Reg.hash} of the defined
          register, with [def = -1] for the register's value at
          procedure entry — plus the constant [add] *)
  | Any  (** no claim *)

val pp_av : av Fmt.t

type t

val compute : Gis_ir.Cfg.t -> t
(** Fixpoint over the CFG, then one recording pass noting the base
    register's abstract value at every [Load]/[Store], before any
    [update] post-increment. *)

val base_value : t -> int -> av
(** Abstract base value of the access with uid [uid]; [Any] when the
    uid is not a recorded memory access. *)

val delta : t -> a:int -> b:int -> int option
(** [Some d] when access [b]'s base provably equals access [a]'s base
    plus [d] on every joint execution — both [Num], or both [Ref] of
    the same definition instance. Callers fold [d] into one side's
    offset and apply {!Gis_ddg.Alias.ranges_disjoint} per its
    contract. *)
