open Gis_util
open Gis_ir
open Gis_analysis
open Gis_ddg
open Gis_obs

(* Rules, in reporting order:
     cfg.malformed-target   (E) successor label missing or detached
     cfg.unreachable-block  (W) layout block the entry cannot reach
     cfg.irreducible        (W) back edge whose target does not dominate
     lint.maybe-uninit      (W) a use reached by External *and* a real def
     lint.dead-def          (W) a definition no instruction ever reads
     lint.dead-store        (W) a store provably overwritten, in its own
                                block, by a covering store before any
                                load or call could read it
     spill.not-mem          (E) Spill_inserted provenance on something other
                                than a load, store, frame setup or
                                cr<->gpr transfer move
     spill.orphan-reload    (W) spill load from a slot nothing spilled to *)

let structural ~stage cfg acc =
  let layout = Cfg.layout cfg in
  let layout_set =
    List.fold_left
      (fun s id -> Ints.Int_set.add id s)
      Ints.Int_set.empty layout
  in
  let reach = Cfg.reachable cfg in
  List.iter
    (fun id ->
      let b = Cfg.block cfg id in
      List.iter
        (fun target ->
          match Cfg.find_label cfg target with
          | None ->
              acc :=
                Diagnostic.error ~rule:"cfg.malformed-target" ~stage
                  ~uid:(Instr.uid b.Block.term) ~blocks:[ b.Block.label ]
                  (Fmt.str "branch target %a does not exist" Label.pp target)
                :: !acc
          | Some tid when not (Ints.Int_set.mem tid layout_set) ->
              acc :=
                Diagnostic.error ~rule:"cfg.malformed-target" ~stage
                  ~uid:(Instr.uid b.Block.term) ~blocks:[ b.Block.label ]
                  (Fmt.str "branch target %a names a detached block" Label.pp
                     target)
                :: !acc
          | Some _ -> ())
        (try Block.successor_labels b with Invalid_argument _ -> []);
      if not (Ints.Int_set.mem id reach) then
        acc :=
          Diagnostic.warning ~rule:"cfg.unreachable-block" ~stage
            ~blocks:[ b.Block.label ]
            "block is unreachable from the entry"
          :: !acc)
    layout

let irreducibility ~stage cfg acc =
  if Cfg.num_blocks cfg = 0 then ()
  else begin
    let flow = Flow.of_cfg ~entry:(Cfg.entry cfg) cfg in
    let local = Flow.local_of_block flow in
    let dom = Dominance.compute flow in
    List.iter
      (fun (u, v) ->
        match Ints.Int_map.find_opt u local, Ints.Int_map.find_opt v local with
        | Some lu, Some lv ->
            if not (Dominance.dominates dom lv lu) then
              acc :=
                Diagnostic.warning ~rule:"cfg.irreducible" ~stage
                  ~blocks:
                    [
                      (Cfg.block cfg u).Block.label;
                      (Cfg.block cfg v).Block.label;
                    ]
                  "back edge into a block that does not dominate its source \
                   (non-natural loop)"
                :: !acc
        | None, _ | _, None -> ())
      (Deps.back_edges cfg)
  end

let dataflow ~stage cfg acc =
  let reaching = Reaching.compute cfg in
  let reach = Cfg.reachable cfg in
  Cfg.iter_blocks
    (fun b ->
      if Ints.Int_set.mem b.Block.id reach then
        List.iter
          (fun i ->
            let uid = Instr.uid i in
            List.iter
              (fun r ->
                match Reaching.defs_of_use reaching ~uid ~reg:r with
                | exception Invalid_argument _ -> ()
                | sites ->
                    let external_ =
                      List.exists
                        (fun s -> Reaching.equal_site s Reaching.External)
                        sites
                    in
                    let has_def =
                      List.exists
                        (function Reaching.Def _ -> true | _ -> false)
                        sites
                    in
                    if external_ && has_def then
                      acc :=
                        Diagnostic.warning ~rule:"lint.maybe-uninit" ~stage
                          ~uid ~blocks:[ b.Block.label ]
                          (Fmt.str
                             "%a may be read before it is written on some path"
                             Reg.pp r)
                        :: !acc)
              (List.sort_uniq Reg.compare (Instr.uses i));
            if not (Instr.is_call i) then
              List.iter
                (fun r ->
                  match Reaching.uses_of_def reaching ~uid ~reg:r with
                  | [] ->
                      acc :=
                        Diagnostic.warning ~rule:"lint.dead-def" ~stage ~uid
                          ~blocks:[ b.Block.label ]
                          (Fmt.str "definition of %a is never read" Reg.pp r)
                        :: !acc
                  | _ :: _ -> ())
                (Instr.defs i))
          (Block.instrs b))
    cfg

(* A store is dead when a later store in the same block provably
   rewrites every byte of it before anything could read it. Address
   proofs come from the checker-side affine analysis ({!Addrcheck}):
   the killing store must use the same base *register* (the simulator
   routes spill-segment accesses by base-register identity, so equal
   numeric addresses through different bases can still name different
   cells), the same memory family, and a provable base-value delta
   under which its [offset, offset+width) range covers the victim's.
   Any call, or any same-family load not provably disjoint from a
   pending store, counts as a read and absolves it. *)
let dead_stores ~stage cfg acc =
  let addr = Addrcheck.compute cfg in
  let reach = Cfg.reachable cfg in
  Cfg.iter_blocks
    (fun b ->
      if Ints.Int_set.mem b.Block.id reach then begin
        (* pending: stores not yet read or overwritten, newest first *)
        let pending = ref [] in
        let may_read ~x_uid (x : Alias.ref_info) ~y_uid (y : Alias.ref_info)
            =
          x.Alias.family = y.Alias.family
          &&
          match Addrcheck.delta addr ~a:x_uid ~b:y_uid with
          | Some d ->
              not
                (Alias.ranges_disjoint x
                   { y with Alias.offset = y.Alias.offset + d })
          | None -> true
        in
        let covers ~x_uid (x : Alias.ref_info) ~y_uid (y : Alias.ref_info) =
          x.Alias.family = y.Alias.family
          && Reg.equal x.Alias.base y.Alias.base
          &&
          match Addrcheck.delta addr ~a:x_uid ~b:y_uid with
          | Some d ->
              y.Alias.offset + d <= x.Alias.offset
              && x.Alias.offset + x.Alias.width
                 <= y.Alias.offset + d + y.Alias.width
          | None -> false
        in
        List.iter
          (fun i ->
            let uid = Instr.uid i in
            match Alias.access_of_instr ~version_of:(fun _ -> 0) i with
            | None -> ()
            | Some Alias.Call_ref -> pending := []
            | Some (Alias.Load_ref y) ->
                pending :=
                  List.filter
                    (fun (x_uid, x) -> not (may_read ~x_uid x ~y_uid:uid y))
                    !pending
            | Some (Alias.Store_ref y) ->
                let dead, live =
                  List.partition
                    (fun (x_uid, x) -> covers ~x_uid x ~y_uid:uid y)
                    !pending
                in
                List.iter
                  (fun (x_uid, x) ->
                    acc :=
                      Diagnostic.warning ~rule:"lint.dead-store" ~stage
                        ~uid:x_uid ~blocks:[ b.Block.label ]
                        (Fmt.str
                           "store to %a%+d (%d bytes) is overwritten by \
                            instruction %d before any load or call could \
                            read it"
                           Reg.pp x.Alias.base x.Alias.offset x.Alias.width
                           uid)
                      :: !acc)
                  dead;
                pending := (uid, y) :: live)
          (Block.instrs b)
      end)
    cfg

let spill_discipline ~stage ~prov ~staged_slots cfg acc =
  let spill_stores = Hashtbl.create 8 in
  let spill_instrs = ref [] in
  Cfg.iter_blocks
    (fun b ->
      List.iter
        (fun i ->
          match Provenance.find prov (Instr.uid i) with
          | Some { Provenance.kind = Provenance.Spill_inserted; _ } ->
              spill_instrs := (b.Block.label, i) :: !spill_instrs;
              (match Instr.kind i with
              | Instr.Store { offset; _ } ->
                  Hashtbl.replace spill_stores offset ()
              | _ -> ())
          | Some _ | None -> ())
        (Block.instrs b))
    cfg;
  List.iter
    (fun (label, i) ->
      match Instr.kind i with
      | Instr.Store _ -> ()
      (* The allocator's frame-base setup ([li base,0]) and the
         cr<->gpr transfer halves of a condition-register spill
         (mfcr/mtcr modeling) are spill code that is neither a load
         nor a store — the two exceptions. *)
      | Instr.Load_imm _ -> ()
      | Instr.Move { dst; src } when dst.Reg.cls <> src.Reg.cls -> ()
      | Instr.Load { offset; _ } ->
          if
            (not (Hashtbl.mem spill_stores offset))
            && not (List.mem offset staged_slots)
          then
            acc :=
              Diagnostic.warning ~rule:"spill.orphan-reload" ~stage
                ~uid:(Instr.uid i) ~blocks:[ label ]
                (Fmt.str
                   "spill reload from slot offset %d with no spill store to \
                    that slot"
                   offset)
              :: !acc
      | _ ->
          acc :=
            Diagnostic.error ~rule:"spill.not-mem" ~stage ~uid:(Instr.uid i)
              ~blocks:[ label ]
              "Spill_inserted provenance on an instruction that is not a \
               load, store, frame setup or cr transfer move"
            :: !acc)
    !spill_instrs

let run ?prov ?(staged_slots = []) ?(stage = "lint") cfg =
  let acc = ref [] in
  structural ~stage cfg acc;
  irreducibility ~stage cfg acc;
  dataflow ~stage cfg acc;
  dead_stores ~stage cfg acc;
  (match prov with
  | Some p -> spill_discipline ~stage ~prov:p ~staged_slots cfg acc
  | None -> ());
  List.rev !acc
