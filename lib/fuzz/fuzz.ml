open Gis_ir
open Gis_machine
open Gis_core
open Gis_frontend
open Gis_workloads

(* Differential fuzzing: one seed denotes one random Tiny-C program and
   one random input; its observable trace (stop reason, call outputs,
   final memories) is computed once on the unscheduled code under the
   narrow reference machine, then every (level x regalloc x machine)
   cell of the matrix must reproduce it exactly, pass the static
   legality checker, and keep the IR well-formed. Anything else is a
   finding, which the shrinker reduces to a minimal reproducer. *)

type kind =
  | Divergence of { expected : string; got : string }
  | Check_failure of string list
  | Crash of string

let kind_label = function
  | Divergence _ -> "divergence"
  | Check_failure _ -> "check-failure"
  | Crash _ -> "crash"

(* The shrinking predicate keys on the failure class, not the exact
   payload: the minimal program rarely diverges with the very same
   trace as the original. *)
let same_kind a b =
  match (a, b) with
  | Divergence _, Divergence _
  | Check_failure _, Check_failure _
  | Crash _, Crash _ ->
      true
  | _ -> false

type cell = { level : Config.level; regalloc : bool; machine : Machine.t }

let config_of_level = function
  | Config.Local -> Config.base
  | Config.Useful -> Config.useful_only
  | Config.Speculative -> Config.speculative

let level_name = function
  | Config.Local -> "base"
  | Config.Useful -> "useful"
  | Config.Speculative -> "speculative"

let slug s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Char.lowercase_ascii c
      | _ -> '-')
    s

let cell_name c =
  Fmt.str "%s_%s_%s" (level_name c.level)
    (slug (Machine.name c.machine))
    (if c.regalloc then "ra" else "sym")

let pp_cell ppf c =
  Fmt.pf ppf "level=%s machine=%s regalloc=%s" (level_name c.level)
    (Machine.name c.machine)
    (if c.regalloc then "on" else "off")

(* The machine matrix of the paper's closing remark: the RS/6000
   reference, wider superscalars (every unit type replicated), a
   latency-stretched single-issue machine, and an asymmetric unit mix.
   Register allocation runs against an 8-register file on the narrowest
   and a wide machine — the two ends where spill placement interacts
   differently with the schedule. *)
let slow_machine =
  Machine.make ~name:"slow3x" ~fixed_units:1 ~float_units:1 ~branch_units:1
    ~exec_time:Machine.rs6k_exec_time
    ~delay:(fun ~producer ~consumer ~reg ->
      3 * Machine.rs6k_delay ~producer ~consumer ~reg)
    ()

let lopsided_machine =
  Machine.make ~name:"lopsided4-1-1" ~fixed_units:4 ~float_units:1
    ~branch_units:1 ()

let machines =
  [
    Machine.rs6k;
    Machine.superscalar ~width:2;
    Machine.superscalar ~width:4;
    Machine.superscalar ~width:8;
    slow_machine;
    lopsided_machine;
  ]

let regalloc_machines = [ Machine.rs6k; Machine.superscalar ~width:4 ]
let levels = [ Config.Local; Config.Useful; Config.Speculative ]

let cells =
  List.concat_map
    (fun level ->
      List.map (fun machine -> { level; regalloc = false; machine }) machines
      @ List.map
          (fun machine -> { level; regalloc = true; machine })
          regalloc_machines)
    levels

(* Registers regalloc cells target: small enough to force spills on
   hardened programs, large enough for the allocator's base + 3 scratch
   reservation. *)
let regalloc_regs = 8

let reference_machine = Machine.rs6k

let reference_observables compiled input =
  Gis_sim.Simulator.observables
    (Gis_sim.Simulator.run reference_machine compiled.Codegen.cfg input)

let run_cell ?(disambig = true) cell compiled input ~reference =
  match
    let cfg = Cfg.deep_copy compiled.Codegen.cfg in
    let base_config = config_of_level cell.level in
    let collector =
      Gis_check.Check.collector
        ~max_speculation_degree:base_config.Config.max_speculation_degree ()
    in
    let config =
      {
        base_config with
        Config.regalloc = cell.regalloc;
        regs = (if cell.regalloc then Some regalloc_regs else None);
        disambiguate = disambig;
        check = Some (Gis_check.Check.hook collector);
      }
    in
    let stats = Pipeline.run cell.machine config cfg in
    Validate.check_exn cfg;
    let check_errors =
      List.concat_map
        (fun (stage, ds) ->
          List.map
            (fun d -> Fmt.str "%s: %a" stage Gis_check.Diagnostic.pp d)
            (Gis_check.Check.errors ds))
        (Gis_check.Check.diagnostics collector)
    in
    if check_errors <> [] then Error (Check_failure check_errors)
    else
      match stats.Pipeline.regalloc with
      | Some alloc -> (
          let input' = Gis_regalloc.Regalloc.remap_input alloc input in
          match
            Gis_regalloc.Regalloc.verify ~gprs:regalloc_regs
              ~fprs:regalloc_regs ~machine:cell.machine
              ~baseline:compiled.Codegen.cfg ~allocated:cfg alloc input
          with
          | Error msg ->
              Error (Check_failure [ Fmt.str "regalloc verifier: %s" msg ])
          | Ok () ->
              let obs =
                Gis_sim.Simulator.observables
                  (Gis_sim.Simulator.run
                     ?frame:alloc.Gis_regalloc.Regalloc.frame cell.machine cfg
                     input')
              in
              if String.equal obs reference then Ok ()
              else Error (Divergence { expected = reference; got = obs }))
      | None ->
          let obs =
            Gis_sim.Simulator.observables
              (Gis_sim.Simulator.run cell.machine cfg input)
          in
          if String.equal obs reference then Ok ()
          else Error (Divergence { expected = reference; got = obs })
  with
  | r -> r
  (* Infeasibility is a typed, deterministic outcome of the allocator
     (the register file is too small for the program), not a bug in the
     scheduler — the well-defined answer, so not a finding. *)
  | exception Gis_regalloc.Regalloc.Infeasible _ -> Ok ()
  | exception e -> Error (Crash (Printexc.to_string e))

(* Generate-and-compile with the deterministic retry chain, keeping the
   source program alongside the compiled result (the shrinker needs the
   AST). The fresh-label counter is reset before every candidate so a
   seed denotes one exact compiled artifact regardless of what ran
   before. *)
let program_of_seed params ~seed =
  Random_prog.generate_compiled_via
    ~compile:(fun prog ->
      Label.reset_fresh_counter ();
      match Codegen.compile prog with
      | compiled -> Ok (prog, compiled)
      | exception Codegen.Error m -> Error m)
    params ~seed

type cell_failure = { cell : cell; kind : kind }

(* Run one already-compiled program through every cell, stopping at the
   first failure. *)
let first_failure ~disambig compiled input ~reference =
  List.find_map
    (fun cell ->
      match run_cell ~disambig cell compiled input ~reference with
      | Ok () -> None
      | Error kind -> Some { cell; kind })
    cells

(* Does [prog] still fail in [cell] with the same failure class, using
   the input derived from [input_seed]? Compilation failures reject the
   candidate, which is what keeps every accepted shrink step a valid
   Tiny-C program. The candidate must also still HALT on the reference
   machine: shrinking a loop condition can produce an infinite loop,
   and a non-terminating candidate fails any trace comparison trivially
   (schedules stop at different output positions when the cycle budget
   runs out), which would let the shrinker walk away from the real bug
   onto a meaningless reproducer. Generated programs always terminate,
   so this keeps accepted steps inside the generator's invariant. *)
let reproduces ~disambig ~cell ~input_seed ~kind prog =
  Label.reset_fresh_counter ();
  match Codegen.compile prog with
  | exception _ -> false
  | compiled -> (
      let input = Random_prog.random_input ~seed:input_seed compiled in
      let outcome =
        Gis_sim.Simulator.run reference_machine compiled.Codegen.cfg input
      in
      if outcome.Gis_sim.Simulator.stop <> Gis_sim.Simulator.Halted then false
      else
        let reference = Gis_sim.Simulator.observables outcome in
        match run_cell ~disambig cell compiled input ~reference with
        | Ok () -> false
        | Error k -> same_kind k kind)

type finding = {
  seed : int;
  cell : cell;
  kind : kind;
  program : Gis_frontend.Ast.program;
  shrunk : Gis_frontend.Ast.program;
}

(* Detection only: run one seed through the matrix, returning the first
   failing cell unshrunk. Self-contained per call (reset + compile
   inside), so seeds can be detected on any domain in any order with
   identical results. *)
let detect_seed ~disambig params seed =
  let prog, compiled = program_of_seed params ~seed in
  let input = Random_prog.random_input ~seed compiled in
  let reference = reference_observables compiled input in
  match first_failure ~disambig compiled input ~reference with
  | None -> None
  | Some { cell; kind } ->
      Some { seed; cell; kind; program = prog; shrunk = prog }

let shrink_finding ~disambig ~shrink_fuel f =
  let shrunk =
    Shrink.shrink ~fuel:shrink_fuel
      ~pred:(reproduces ~disambig ~cell:f.cell ~input_seed:f.seed ~kind:f.kind)
      f.program
  in
  { f with shrunk }

let run_seed ?(params = Random_prog.hardened)
    ?(shrink_fuel = Shrink.default_fuel) ?(disambig = true) seed =
  Option.map
    (shrink_finding ~disambig ~shrink_fuel)
    (detect_seed ~disambig params seed)

type report = {
  seeds_run : int;
  cells_per_seed : int;
  findings : finding list;  (** in seed order *)
}

(* Detect a round of seeds, one per domain. [jobs = 1] stays entirely
   on the current domain. Detection is deterministic per seed, so the
   round's combined result does not depend on [jobs]. *)
let detect_round ~disambig params seeds =
  match seeds with
  | [ seed ] -> [ detect_seed ~disambig params seed ]
  | seeds ->
      seeds
      |> List.map (fun seed ->
             Domain.spawn (fun () -> detect_seed ~disambig params seed))
      |> List.map Domain.join

let campaign ?(params = Random_prog.hardened) ?(max_findings = 5)
    ?(shrink_fuel = Shrink.default_fuel) ?(jobs = 1) ?(log = ignore)
    ?(disambig = true) ~start ~seeds () =
  let jobs = max 1 jobs in
  (* Rounds of [jobs] seeds; stop dispatching once enough findings are
     in. Every dispatched round runs to completion, so the set of seeds
     examined — hence the findings — is independent of [jobs]. *)
  let findings = ref [] and ran = ref 0 in
  let next = ref start in
  let stop = start + seeds in
  while !next < stop && List.length !findings < max_findings do
    let round =
      List.init (min jobs (stop - !next)) (fun i -> !next + i)
    in
    next := !next + List.length round;
    ran := !ran + List.length round;
    List.iter
      (Option.iter (fun f -> findings := f :: !findings))
      (detect_round ~disambig params round)
  done;
  let findings =
    List.rev !findings
    |> List.filteri (fun i _ -> i < max_findings)
    |> List.map (fun f ->
           let f = shrink_finding ~disambig ~shrink_fuel f in
           log
             (Fmt.str "seed %d: %s in [%a] (%d -> %d statements)" f.seed
                (kind_label f.kind) pp_cell f.cell
                (Shrink.stmt_count f.program)
                (Shrink.stmt_count f.shrunk));
           f)
  in
  { seeds_run = !ran; cells_per_seed = List.length cells; findings }

let kind_to_json = function
  | Divergence { expected; got } ->
      Gis_obs.Json.Obj
        [
          ("kind", Gis_obs.Json.String "divergence");
          ("expected", Gis_obs.Json.String expected);
          ("got", Gis_obs.Json.String got);
        ]
  | Check_failure msgs ->
      Gis_obs.Json.Obj
        [
          ("kind", Gis_obs.Json.String "check-failure");
          ( "errors",
            Gis_obs.Json.List
              (List.map (fun m -> Gis_obs.Json.String m) msgs) );
        ]
  | Crash msg ->
      Gis_obs.Json.Obj
        [
          ("kind", Gis_obs.Json.String "crash");
          ("message", Gis_obs.Json.String msg);
        ]

let finding_to_json f =
  Gis_obs.Json.Obj
    [
      ("seed", Gis_obs.Json.Int f.seed);
      ("cell", Gis_obs.Json.String (Fmt.str "%a" pp_cell f.cell));
      ("failure", kind_to_json f.kind);
      ("original_statements", Gis_obs.Json.Int (Shrink.stmt_count f.program));
      ("shrunk_statements", Gis_obs.Json.Int (Shrink.stmt_count f.shrunk));
      ( "shrunk_program",
        Gis_obs.Json.String (Fmt.str "%a" Gis_frontend.Ast.pp_program f.shrunk)
      );
    ]

let report_to_json r =
  Gis_obs.Json.Obj
    [
      ("seeds_run", Gis_obs.Json.Int r.seeds_run);
      ("cells_per_seed", Gis_obs.Json.Int r.cells_per_seed);
      ("findings", Gis_obs.Json.List (List.map finding_to_json r.findings));
    ]
