(** Differential fuzzing of the whole compiler.

    One seed denotes one random Tiny-C program
    ({!Gis_workloads.Random_prog}, hardened grammar by default) and one
    random input. The oracle computes the observable trace — stop
    reason, call outputs, final memories — of the {e unscheduled} code
    on the reference machine, then requires every cell of a
    (level x regalloc x machine) matrix to reproduce it exactly while
    also passing the static legality checker ({!Gis_check.Check}), the
    IR validator, and (in allocation cells) the register-allocation
    verifier. A trace divergence, checker error, verifier rejection, or
    any exception out of the pipeline or simulator is a {e finding};
    findings are delta-debugged ({!Shrink}) to a minimal reproducer.

    Everything is deterministic in the seed: re-running a campaign
    reproduces the same findings and the same shrunk programs. *)

type kind =
  | Divergence of { expected : string; got : string }
      (** observable traces differ (expected = unscheduled reference) *)
  | Check_failure of string list
      (** static checker errors, or the allocation verifier said no *)
  | Crash of string  (** pipeline, validator or simulator raised *)

val kind_label : kind -> string
(** ["divergence"], ["check-failure"] or ["crash"]. *)

val same_kind : kind -> kind -> bool
(** Same failure class (payloads ignored) — the shrinking predicate. *)

type cell = {
  level : Gis_core.Config.level;
  regalloc : bool;  (** allocate onto {!regalloc_regs} registers *)
  machine : Gis_machine.Machine.t;
}

val cells : cell list
(** The matrix: 3 levels x (6 machines symbolic + 2 machines
    allocated). Machines cover issue widths 1-8, 3x-stretched delays
    and an asymmetric 4/1/1 unit mix. *)

val cell_name : cell -> string
(** Filesystem-safe slug, e.g. ["speculative_superscalar-x4_ra"]. *)

val pp_cell : cell Fmt.t
val regalloc_regs : int
val reference_machine : Gis_machine.Machine.t

val run_cell :
  ?disambig:bool ->
  cell ->
  Gis_frontend.Codegen.compiled ->
  Gis_sim.Simulator.input ->
  reference:string ->
  (unit, kind) result
(** Schedule (a deep copy of) the compiled program under the cell's
    configuration with the legality checker hooked in, and compare the
    resulting observable trace against [reference]. [disambig]
    (default [true]) sets [Config.disambiguate] — the fuzzer's default
    exercises symbolic memory disambiguation in every cell. Never
    raises — exceptions become [Crash]. *)

type finding = {
  seed : int;
  cell : cell;  (** first failing cell, in {!cells} order *)
  kind : kind;
  program : Gis_frontend.Ast.program;  (** as generated *)
  shrunk : Gis_frontend.Ast.program;  (** minimal reproducer *)
}

val run_seed :
  ?params:Gis_workloads.Random_prog.params ->
  ?shrink_fuel:int ->
  ?disambig:bool ->
  int ->
  finding option
(** Fuzz one seed: generate, compile, run the full matrix, shrink the
    first failure (predicate: candidate compiles, still halts on the
    reference machine, and fails in the same cell with the same failure
    class). [None] means every cell agreed with the reference. *)

type report = {
  seeds_run : int;
  cells_per_seed : int;
  findings : finding list;  (** in seed order *)
}

val campaign :
  ?params:Gis_workloads.Random_prog.params ->
  ?max_findings:int ->
  ?shrink_fuel:int ->
  ?jobs:int ->
  ?log:(string -> unit) ->
  ?disambig:bool ->
  start:int ->
  seeds:int ->
  unit ->
  report
(** Fuzz the seed window [start, start + seeds); stop early after
    [max_findings] (default 5) findings, then shrink them (in seed
    order). [jobs] (default 1) detects that many seeds concurrently on
    separate domains — each seed's detection is self-contained, so the
    findings are identical at any job count. [log] receives one line
    per finding as it is shrunk. [disambig] (default [true]) is
    applied to every cell; [false] is the A1 control campaign. *)

val report_to_json : report -> Gis_obs.Json.t
val finding_to_json : finding -> Gis_obs.Json.t
