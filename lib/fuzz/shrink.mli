(** Delta debugging over the Tiny-C AST.

    The shrinker is pure and draws no randomness: [candidates] proposes
    one-step reductions in a fixed order (coarse structural cuts before
    fine expression edits) and [shrink] greedily descends through the
    first candidate the predicate accepts, so the result is a
    deterministic function of (program, predicate).

    Candidates are {e syntactic} reductions only — they may reference a
    dropped declaration and fail to compile. A predicate that requires
    compilation (as the fuzzer's does) filters those out, which is what
    makes every {e accepted} step a valid Tiny-C program. *)

val size : Gis_frontend.Ast.program -> int
(** AST node count plus declaration count — the strictly decreasing
    primary measure (literal halving, which preserves it, shrinks total
    literal magnitude instead). *)

val stmt_count : Gis_frontend.Ast.program -> int
(** Statements in the body, counting nested ones — the "minimal
    reproducer" metric reported for corpus entries. *)

val candidates : Gis_frontend.Ast.program -> Gis_frontend.Ast.program list
(** All one-step reductions, in the order [shrink] tries them: body
    statement removal, block splicing and statement edits first, then
    declaration removal. Every candidate has a strictly smaller
    (size, literal-magnitude) measure. *)

val default_fuel : int

val shrink :
  ?fuel:int ->
  ?on_step:(Gis_frontend.Ast.program -> unit) ->
  pred:(Gis_frontend.Ast.program -> bool) ->
  Gis_frontend.Ast.program ->
  Gis_frontend.Ast.program
(** Greedy fixpoint: repeatedly move to the first candidate satisfying
    [pred] until none does (or [fuel] predicate evaluations are spent).
    [on_step] observes each accepted intermediate program — the hook the
    shrinker-invariant tests use. The result satisfies [pred] whenever
    the input did. *)
