(* Reproducer files: each finding becomes one runnable Tiny-C source in
   the corpus directory, with the provenance (seed, cell, failure class,
   divergence summary, shrink ratio) in a `//` comment header the lexer
   skips — so `gisc <file> --simulate` or `gisc check <file>` replays it
   directly. *)

let comment_lines tag text =
  match String.split_on_char '\n' text with
  | [] -> []
  | first :: rest ->
      Fmt.str "// %s: %s" tag first
      :: List.map (fun l -> Fmt.str "//   %s" l) rest

let header (f : Fuzz.finding) =
  let kind_detail =
    match f.kind with
    | Fuzz.Divergence { expected; got } ->
        comment_lines "expected" expected @ comment_lines "got" got
    | Fuzz.Check_failure msgs ->
        List.concat_map (comment_lines "check") msgs
    | Fuzz.Crash msg -> comment_lines "crash" msg
  in
  [
    "// gisc fuzz reproducer";
    Fmt.str "// seed: %d" f.seed;
    Fmt.str "// cell: %a" Fuzz.pp_cell f.cell;
    Fmt.str "// failure: %s" (Fuzz.kind_label f.kind);
    Fmt.str "// statements: %d generated, %d after shrinking"
      (Shrink.stmt_count f.program)
      (Shrink.stmt_count f.shrunk);
  ]
  @ kind_detail

let file_name (f : Fuzz.finding) =
  Fmt.str "seed%d_%s.tc" f.seed (Fuzz.cell_name f.cell)

let ensure_dir dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let write ~dir (f : Fuzz.finding) =
  ensure_dir dir;
  let path = Filename.concat dir (file_name f) in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter (fun l -> output_string oc (l ^ "\n")) (header f);
      output_string oc
        (Fmt.str "%a@." Gis_frontend.Ast.pp_program f.shrunk));
  path

let write_all ~dir findings = List.map (fun f -> write ~dir f) findings
