open Gis_frontend.Ast

(* Delta debugging over the Tiny-C AST. [candidates] proposes one-step
   reductions in a fixed order; [shrink] greedily takes the first
   candidate that still satisfies the predicate and restarts. Everything
   is pure and draws no randomness, so shrinking is deterministic in
   (program, predicate).

   Termination: every candidate strictly decreases the measure
   (node count, then total literal magnitude) — statement and expression
   replacements shed at least one node, and literal halving keeps the
   node count while shrinking the magnitude. [shrink] also carries a
   fuel bound as a backstop. *)

let rec expr_size = function
  | Int _ | Var _ -> 1
  | Index (_, e) | Neg e -> 1 + expr_size e
  | Binop (_, a, b) -> 1 + expr_size a + expr_size b

let rec cond_size = function
  | Rel (_, a, b) -> 1 + expr_size a + expr_size b
  | Not c -> 1 + cond_size c
  | And_also (a, b) | Or_else (a, b) -> 1 + cond_size a + cond_size b

let rec stmt_size = function
  | Assign (_, e) | Print e -> 1 + expr_size e
  | Store (_, i, e) -> 1 + expr_size i + expr_size e
  | If (c, t, e) -> 1 + cond_size c + stmts_size t + stmts_size e
  | While (c, b) | Do_while (b, c) -> 1 + cond_size c + stmts_size b
  | For (i, c, s, b) ->
      1
      + (match i with Some s -> stmt_size s | None -> 0)
      + (match c with Some c -> cond_size c | None -> 0)
      + (match s with Some s -> stmt_size s | None -> 0)
      + stmts_size b
  | Block b -> 1 + stmts_size b

and stmts_size b = List.fold_left (fun acc s -> acc + stmt_size s) 0 b

let size p = stmts_size p.body + List.length p.decls

let rec count_stmts_in = function
  | Assign _ | Store _ | Print _ -> 1
  | If (_, t, e) -> 1 + count_stmts t + count_stmts e
  | While (_, b) | Do_while (b, _) -> 1 + count_stmts b
  | For (i, _, s, b) ->
      1
      + (match i with Some s -> count_stmts_in s | None -> 0)
      + (match s with Some s -> count_stmts_in s | None -> 0)
      + count_stmts b
  | Block b -> 1 + count_stmts b

and count_stmts b = List.fold_left (fun acc s -> acc + count_stmts_in s) 0 b

let stmt_count p = count_stmts p.body

(* [at_each xs f] rebuilds [xs] once per element with that element
   replaced by each of [f x]'s proposals (element-local edits, list
   structure kept). *)
let at_each xs f =
  let rec go before = function
    | [] -> []
    | x :: after ->
        List.map (fun x' -> List.rev_append before (x' :: after)) (f x)
        @ go (x :: before) after
  in
  go [] xs

(* Remove one element at a time. *)
let drop_each xs =
  let rec go before = function
    | [] -> []
    | x :: after -> List.rev_append before after :: go (x :: before) after
  in
  go [] xs

let rec expr_candidates e =
  let atoms =
    match e with
    | Int 0 -> []
    | Int 1 -> [ Int 0 ]
    | _ -> [ Int 0; Int 1 ]
  in
  let structural =
    match e with
    | Int n when n > 16 || n < -16 -> [ Int (n / 2) ]
    | Int _ | Var _ -> []
    | Neg e -> e :: List.map (fun e' -> Neg e') (expr_candidates e)
    | Index (a, i) -> i :: List.map (fun i' -> Index (a, i')) (expr_candidates i)
    | Binop (op, a, b) ->
        [ a; b ]
        @ List.map (fun a' -> Binop (op, a', b)) (expr_candidates a)
        @ List.map (fun b' -> Binop (op, a, b')) (expr_candidates b)
  in
  atoms @ structural

let rec cond_candidates c =
  match c with
  | Rel (op, a, b) ->
      List.map (fun a' -> Rel (op, a', b)) (expr_candidates a)
      @ List.map (fun b' -> Rel (op, a, b')) (expr_candidates b)
  | Not c -> c :: List.map (fun c' -> Not c') (cond_candidates c)
  | And_also (a, b) | Or_else (a, b) ->
      [ a; b ]
      @ List.map
          (fun a' ->
            match c with
            | And_also _ -> And_also (a', b)
            | _ -> Or_else (a', b))
          (cond_candidates a)
      @ List.map
          (fun b' ->
            match c with
            | And_also _ -> And_also (a, b')
            | _ -> Or_else (a, b'))
          (cond_candidates b)

(* One-step reductions of a single statement, coarsest first: replacing
   a compound with (a block of) its body sheds the most nodes, so the
   greedy loop tries it before fine-grained expression edits. *)
let rec stmt_candidates s =
  match s with
  | Assign (v, e) -> List.map (fun e' -> Assign (v, e')) (expr_candidates e)
  | Print e -> List.map (fun e' -> Print e') (expr_candidates e)
  | Store (a, i, e) ->
      List.map (fun i' -> Store (a, i', e)) (expr_candidates i)
      @ List.map (fun e' -> Store (a, i, e')) (expr_candidates e)
  | If (c, t, e) ->
      [ Block t ]
      @ (if e <> [] then [ Block e; If (c, t, []) ] else [])
      @ List.map (fun t' -> If (c, t', e)) (stmts_candidates t)
      @ List.map (fun e' -> If (c, t, e')) (stmts_candidates e)
      @ List.map (fun c' -> If (c', t, e)) (cond_candidates c)
  | While (c, b) ->
      [ Block b ]
      @ List.map (fun b' -> While (c, b')) (stmts_candidates b)
      @ List.map (fun c' -> While (c', b)) (cond_candidates c)
  | Do_while (b, c) ->
      [ Block b ]
      @ List.map (fun b' -> Do_while (b', c)) (stmts_candidates b)
      @ List.map (fun c' -> Do_while (b, c')) (cond_candidates c)
  | For (i, c, st, b) ->
      [ Block (Option.to_list i @ b @ Option.to_list st) ]
      @ (if i <> None then [ For (None, c, st, b) ] else [])
      @ (if c <> None then [ For (i, None, st, b) ] else [])
      @ (if st <> None then [ For (i, c, None, b) ] else [])
      @ List.map (fun b' -> For (i, c, st, b')) (stmts_candidates b)
  | Block [ s ] -> [ s ]
  | Block b -> List.map (fun b' -> Block b') (stmts_candidates b)

(* Reductions of a statement list: drop one statement, unwrap a block
   into its parent, or edit one statement in place. *)
and stmts_candidates b =
  drop_each b
  @ List.concat_map
      (fun (i, s) ->
        match s with
        | Block inner ->
            let before = List.filteri (fun j _ -> j < i) b in
            let after = List.filteri (fun j _ -> j > i) b in
            [ before @ inner @ after ]
        | _ -> [])
      (List.mapi (fun i s -> (i, s)) b)
  @ at_each b stmt_candidates

let candidates p =
  List.map (fun body -> { p with body }) (stmts_candidates p.body)
  @ List.map (fun decls -> { p with decls }) (drop_each p.decls)

let default_fuel = 10_000

let shrink ?(fuel = default_fuel) ?(on_step = fun _ -> ()) ~pred p =
  let fuel = ref fuel in
  let rec go p =
    let rec first = function
      | [] -> p
      | c :: rest ->
          if !fuel <= 0 then p
          else begin
            decr fuel;
            if pred c then begin
              on_step c;
              go c
            end
            else first rest
          end
    in
    first (candidates p)
  in
  go p
