(** The on-disk reproducer corpus.

    One file per finding: a `//` comment header (seed, cell, failure
    class, divergence summary, shrink ratio) followed by the shrunk
    Tiny-C program — directly replayable with [gisc <file> --simulate]
    or [gisc check <file>] since the lexer skips comments. *)

val file_name : Fuzz.finding -> string
(** e.g. ["seed42_speculative_superscalar-x4_ra.tc"]. *)

val write : dir:string -> Fuzz.finding -> string
(** Write one reproducer (creating [dir] if needed); returns the path. *)

val write_all : dir:string -> Fuzz.finding list -> string list
