open Gis_ir
open Gis_machine
open Gis_obs

type input = {
  int_regs : (Reg.t * int) list;
  float_regs : (Reg.t * float) list;
  memory : (int * int) list;
  float_memory : (int * float) list;
  spill_memory : (int * int) list;
  spill_float_memory : (int * float) list;
}

let no_input =
  {
    int_regs = [];
    float_regs = [];
    memory = [];
    float_memory = [];
    spill_memory = [];
    spill_float_memory = [];
  }

type stop_reason = Halted | Out_of_fuel | Trap of string

let pp_stop_reason ppf = function
  | Halted -> Fmt.string ppf "halted"
  | Out_of_fuel -> Fmt.string ppf "out-of-fuel"
  | Trap m -> Fmt.pf ppf "trap: %s" m

type outcome = {
  stop : stop_reason;
  cycles : int;
  instructions : int;
  output : string list;
  final_memory : (int * int) list;
  final_float_memory : (int * float) list;
  final_spill_memory : (int * int) list;
  final_spill_float_memory : (int * float) list;
  read_int : Reg.t -> int option;
  block_counts : (Label.t * int) list;
  telemetry : Trace.summary;
}

exception Trapped of string

(* Process-wide metrics (no-ops until Gis_obs.Metrics.enable). *)
let m_runs = Metrics.counter "sim.runs_total"
let m_instrs = Metrics.counter "sim.instructions_total"
let m_issue_span = Metrics.histogram "sim.issue_span_cycles"

type state = {
  machine : Machine.t;
  cfg : Cfg.t;
  frame : Reg.t option;
      (** the allocator's spill frame base; loads and stores whose base
          register IS this register (by identity, not address value)
          are routed to the spill segment below *)
  ints : (int, int) Hashtbl.t;  (** Reg.hash -> value (GPR and CR) *)
  floats : (int, float) Hashtbl.t;
  mem : (int, int) Hashtbl.t;
  fmem : (int, float) Hashtbl.t;
  smem : (int, int) Hashtbl.t;  (** spill segment, disjoint from [mem] *)
  sfmem : (int, float) Hashtbl.t;
  producers : (int, Instr.t * int) Hashtbl.t;
      (** Reg.hash -> (producing instruction, cycle its result leaves the
          unit); consumer readiness adds the pair-specific delay *)
  unit_use : (int * int, int) Hashtbl.t;  (** (cycle, unit rank) -> issues *)
  mutable cursor : int;  (** issue cycle of the previous instruction *)
  mutable last_done : int;  (** completion cycle of the latest instruction *)
  mutable executed : int;
  mutable out : string list;
  mutable header_entries : int list;  (** issue cycles, newest first *)
  counts : (Label.t, int) Hashtbl.t;
  mutable last_store : (Instr.t * int) option;
      (** last store and its completion cycle, for the secondary
          [mem_delay] constraint (store-queue forwarding) *)
  mutable last_call : (Instr.t * int) option;
      (** last call, tracked separately: a call between a store and a
          load must not hide the store from the store-queue delay, and
          any delay the machine charges behind a call is attributed as
          call serialization, not a store-queue stall *)
  (* ---- telemetry (Gis_obs.Trace) ---- *)
  mutable cur_block : Label.t;  (** label of the block being executed *)
  mutable interlock_cycles : int;
  mutable mem_interlock_cycles : int;
  mutable call_interlock_cycles : int;
  mutable in_order_instrs : int;
  unit_busy : int array;  (** unit rank -> gap cycles lost to a full unit *)
  unit_issues : int array;  (** unit rank -> dynamic issues *)
  block_stats : (Label.t, int * int) Hashtbl.t;
      (** label -> (instructions issued, stall cycles attributed) *)
  trace : Trace.event Gis_util.Vec.t option;
      (** full per-issue event log, when requested *)
}

let unit_rank = function Instr.Fixed -> 0 | Instr.Float -> 1 | Instr.Branch -> 2

let read_int st r = Option.value ~default:0 (Hashtbl.find_opt st.ints (Reg.hash r))
let read_float st r =
  Option.value ~default:0.0 (Hashtbl.find_opt st.floats (Reg.hash r))

let write_int st r v = Hashtbl.replace st.ints (Reg.hash r) v
let write_float st r v = Hashtbl.replace st.floats (Reg.hash r) v

let operand_value st = function
  | Instr.Reg r -> read_int st r
  | Instr.Imm n -> n

let binop_value op a b =
  match op with
  | Instr.Add -> a + b
  | Instr.Sub -> a - b
  | Instr.Mul -> a * b
  | Instr.Div -> if b = 0 then raise (Trapped "division by zero") else a / b
  | Instr.Rem -> if b = 0 then raise (Trapped "remainder by zero") else a mod b
  | Instr.And -> a land b
  | Instr.Or -> a lor b
  | Instr.Xor -> a lxor b
  | Instr.Shl -> a lsl (b land 31)
  | Instr.Shr -> a asr (b land 31)

let fbinop_value op a b =
  match op with
  | Instr.Fadd -> a +. b
  | Instr.Fsub -> a -. b
  | Instr.Fmul -> a *. b
  | Instr.Fdiv -> a /. b

let sign n = if n < 0 then -1 else if n > 0 then 1 else 0

(* Issue the instruction: find its cycle under in-order issue, operand
   interlocks and per-cycle unit slots; record its defs' producers.
   Along the way, attribute every cycle between the previous issue and
   this one to its cause — register interlock, store-queue delay, or a
   full unit — and remember which constraint was binding. *)
let issue st i =
  let ready, culprit =
    List.fold_left
      (fun ((acc, _) as best) r ->
        match Hashtbl.find_opt st.producers (Reg.hash r) with
        | Some (producer, avail) ->
            let t =
              avail + Machine.delay st.machine ~producer ~consumer:i ~reg:r
            in
            if t > acc then
              (t, Some (Trace.Interlock { reg = r; producer = Instr.uid producer }))
            else best
        | None -> best)
      (0, None) (Instr.uses i)
  in
  let ready, culprit =
    (* Secondary memory delay: only a non-zero [mem_delay] constrains
       issue (zero means the hardware forwards). Stores and calls are
       tracked separately so that a call does not shadow an earlier
       store, and so the stall is attributed to the right category. *)
    if Instr.touches_memory i then begin
      let constrain (ready, culprit) source mk =
        match source with
        | Some (producer, fin) ->
            let d = Machine.mem_delay st.machine ~producer ~consumer:i in
            if d > 0 && fin + d > ready then
              (fin + d, Some (mk (Instr.uid producer)))
            else (ready, culprit)
        | None -> (ready, culprit)
      in
      constrain
        (constrain (ready, culprit) st.last_store (fun producer ->
             Trace.Mem_interlock { producer }))
        st.last_call
        (fun producer -> Trace.Call_interlock { producer })
    end
    else (ready, culprit)
  in
  let u = unit_rank (Instr.unit_ty i) in
  let cap = Machine.units st.machine (Instr.unit_ty i) in
  let start = max st.cursor ready in
  let cycle = ref start in
  let used c = Option.value ~default:0 (Hashtbl.find_opt st.unit_use (c, u)) in
  while used !cycle >= cap do
    incr cycle
  done;
  Hashtbl.replace st.unit_use (!cycle, u) (used !cycle + 1);
  (* Attribution: gap = interlock part + unit-busy part, exactly. *)
  let busy = !cycle - start in
  let interlock = max 0 (ready - st.cursor) in
  let gap = !cycle - st.cursor in
  (match culprit with
  | Some (Trace.Mem_interlock _) ->
      st.mem_interlock_cycles <- st.mem_interlock_cycles + interlock
  | Some (Trace.Call_interlock _) ->
      st.call_interlock_cycles <- st.call_interlock_cycles + interlock
  | Some _ | None -> st.interlock_cycles <- st.interlock_cycles + interlock);
  st.unit_busy.(u) <- st.unit_busy.(u) + busy;
  st.unit_issues.(u) <- st.unit_issues.(u) + 1;
  if st.cursor > ready then st.in_order_instrs <- st.in_order_instrs + 1;
  let bi, bs = Option.value ~default:(0, 0) (Hashtbl.find_opt st.block_stats st.cur_block) in
  Hashtbl.replace st.block_stats st.cur_block (bi + 1, bs + gap);
  let fin = !cycle + Machine.exec_time st.machine i in
  (match st.trace with
  | Some log ->
      let stall =
        if busy > 0 then Trace.Unit_busy (Instr.unit_ty i)
        else if interlock > 0 then
          Option.value ~default:Trace.No_stall culprit
        else if st.cursor > ready then Trace.In_order (st.cursor - ready)
        else Trace.No_stall
      in
      Gis_util.Vec.push log
        {
          Trace.cycle = !cycle;
          unit_ = Instr.unit_ty i;
          block = st.cur_block;
          instr = i;
          stall;
          gap;
          fin;
        }
  | None -> ());
  st.cursor <- !cycle;
  st.last_done <- max st.last_done fin;
  List.iter (fun r -> Hashtbl.replace st.producers (Reg.hash r) (i, fin)) (Instr.defs i);
  if Instr.is_store i then st.last_store <- Some (i, fin);
  if Instr.is_call i then st.last_call <- Some (i, fin);
  st.executed <- st.executed + 1

(* Fault-injection hook for the differential fuzzer's self-test: while
   set, additions executed on a machine with more than two fixed-point
   units are off by one. The corruption is machine-dependent on purpose
   — the fuzzer compares one seed's observable trace across a machine
   matrix against a narrow reference machine, and only a
   machine-dependent bug distinguishes those cells (a uniform semantic
   bug would corrupt the reference identically and cancel out). Never
   set outside tests. *)
let corrupt_wide_add_for_testing = ref false

(* Execute the instruction's semantics; returns the label to jump to
   when it is a taken branch terminator. *)
(* The spill segment is selected by the identity of the base register,
   never by the numeric address: program arithmetic can compute any
   integer, so no address range is unreachable, but the frame register
   is reserved by the allocator and no program value is ever assigned
   to it. This is what makes spill storage disjoint from everything the
   program can observe. *)
let is_frame st base =
  match st.frame with Some f -> Reg.equal f base | None -> false

let execute st i =
  match Instr.kind i with
  | Instr.Load { dst; base; offset; update } ->
      let addr = read_int st base + offset in
      let mem = if is_frame st base then st.smem else st.mem in
      let fmem = if is_frame st base then st.sfmem else st.fmem in
      (match dst.Reg.cls with
      | Reg.Fpr ->
          write_float st dst
            (Option.value ~default:0.0 (Hashtbl.find_opt fmem addr))
      | Reg.Gpr | Reg.Cr ->
          write_int st dst
            (Option.value ~default:0 (Hashtbl.find_opt mem addr)));
      if update then write_int st base addr;
      None
  | Instr.Store { src; base; offset; update } ->
      let addr = read_int st base + offset in
      let mem = if is_frame st base then st.smem else st.mem in
      let fmem = if is_frame st base then st.sfmem else st.fmem in
      (match src.Reg.cls with
      | Reg.Fpr -> Hashtbl.replace fmem addr (read_float st src)
      | Reg.Gpr | Reg.Cr -> Hashtbl.replace mem addr (read_int st src));
      if update then write_int st base addr;
      None
  | Instr.Load_imm { dst; value } ->
      write_int st dst value;
      None
  | Instr.Move { dst; src } ->
      (match dst.Reg.cls with
      | Reg.Fpr -> write_float st dst (read_float st src)
      | Reg.Gpr | Reg.Cr -> write_int st dst (read_int st src));
      None
  | Instr.Binop { op; dst; lhs; rhs } ->
      let v = binop_value op (read_int st lhs) (operand_value st rhs) in
      let v =
        if
          !corrupt_wide_add_for_testing
          && op = Instr.Add
          && Machine.units st.machine Instr.Fixed > 2
        then v + 1
        else v
      in
      write_int st dst v;
      None
  | Instr.Fbinop { op; dst; lhs; rhs } ->
      write_float st dst (fbinop_value op (read_float st lhs) (read_float st rhs));
      None
  | Instr.Compare { dst; lhs; rhs } ->
      write_int st dst (sign (compare (read_int st lhs) (operand_value st rhs)));
      None
  | Instr.Fcompare { dst; lhs; rhs } ->
      write_int st dst (sign (Float.compare (read_float st lhs) (read_float st rhs)));
      None
  | Instr.Branch_cond { cr; cond; expect; taken; fallthru } ->
      let holds = Instr.eval_cond cond (read_int st cr) in
      Some (if holds = expect then taken else fallthru)
  | Instr.Jump { target } -> Some target
  | Instr.Call { name; args; ret } ->
      let rendered =
        Fmt.str "%s(%s)" name
          (String.concat ","
             (List.map
                (fun r ->
                  match r.Reg.cls with
                  | Reg.Fpr -> Fmt.str "%g" (read_float st r)
                  | Reg.Gpr | Reg.Cr -> string_of_int (read_int st r))
                args))
      in
      st.out <- rendered :: st.out;
      (match ret with Some r -> write_int st r 0 | None -> ());
      None
  | Instr.Halt -> None

(* Aggregate the per-issue attribution into a [Trace.summary]. *)
let summarize st =
  let span = st.cursor + 1 in
  let unit_tys = [ Instr.Fixed; Instr.Float; Instr.Branch ] in
  let units =
    List.map
      (fun ut ->
        let rank = unit_rank ut in
        let per_count = Hashtbl.create 8 in
        let active = ref 0 in
        Hashtbl.iter
          (fun (_, r) k ->
            if r = rank then begin
              incr active;
              Hashtbl.replace per_count k
                (1 + Option.value ~default:0 (Hashtbl.find_opt per_count k))
            end)
          st.unit_use;
        let hist =
          List.sort compare
            (Hashtbl.fold (fun k c acc -> (k, c) :: acc) per_count [])
        in
        let hist =
          if st.executed = 0 then hist else (0, span - !active) :: hist
        in
        {
          Trace.unit_ = ut;
          issues = st.unit_issues.(rank);
          busy_stall = st.unit_busy.(rank);
          histogram = hist;
        })
      unit_tys
  in
  let blocks =
    Hashtbl.fold
      (fun label entries acc ->
        let instrs, stalls =
          Option.value ~default:(0, 0) (Hashtbl.find_opt st.block_stats label)
        in
        { Trace.block = label; entries; instrs; stall_cycles = stalls } :: acc)
      st.counts []
    |> List.sort (fun a b -> Label.compare a.Trace.block b.Trace.block)
  in
  {
    Trace.last_issue = st.cursor;
    interlock_cycles = st.interlock_cycles;
    mem_interlock_cycles = st.mem_interlock_cycles;
    call_interlock_cycles = st.call_interlock_cycles;
    in_order_instrs = st.in_order_instrs;
    units;
    blocks;
    events =
      (match st.trace with Some log -> Gis_util.Vec.to_list log | None -> []);
  }

let run_with_header ~fuel ?(trace = false) ?frame machine cfg ~header input =
  let st =
    {
      machine;
      cfg;
      frame;
      ints = Hashtbl.create 64;
      floats = Hashtbl.create 16;
      mem = Hashtbl.create 256;
      fmem = Hashtbl.create 16;
      smem = Hashtbl.create 16;
      sfmem = Hashtbl.create 16;
      producers = Hashtbl.create 64;
      unit_use = Hashtbl.create 1024;
      cursor = 0;
      last_done = 0;
      executed = 0;
      out = [];
      header_entries = [];
      counts = Hashtbl.create 16;
      last_store = None;
      last_call = None;
      cur_block = (Cfg.block cfg (Cfg.entry cfg)).Block.label;
      interlock_cycles = 0;
      mem_interlock_cycles = 0;
      call_interlock_cycles = 0;
      in_order_instrs = 0;
      unit_busy = Array.make 3 0;
      unit_issues = Array.make 3 0;
      block_stats = Hashtbl.create 16;
      trace = (if trace then Some (Gis_util.Vec.create ()) else None);
    }
  in
  List.iter (fun (r, v) -> write_int st r v) input.int_regs;
  List.iter (fun (r, v) -> write_float st r v) input.float_regs;
  List.iter (fun (a, v) -> Hashtbl.replace st.mem a v) input.memory;
  List.iter (fun (a, v) -> Hashtbl.replace st.fmem a v) input.float_memory;
  List.iter (fun (a, v) -> Hashtbl.replace st.smem a v) input.spill_memory;
  List.iter
    (fun (a, v) -> Hashtbl.replace st.sfmem a v)
    input.spill_float_memory;
  let stop = ref None in
  let block = ref (Cfg.block cfg (Cfg.entry cfg)) in
  (try
     while !stop = None do
       let b = !block in
       st.cur_block <- b.Block.label;
       Hashtbl.replace st.counts b.Block.label
         (1 + Option.value ~default:0 (Hashtbl.find_opt st.counts b.Block.label));
       (match header with
       | Some h when Label.equal b.Block.label h ->
           st.header_entries <- st.cursor :: st.header_entries
       | Some _ | None -> ());
       let body = b.Block.body in
       for idx = 0 to Gis_util.Vec.length body - 1 do
         if !stop = None then begin
           if st.executed >= fuel then stop := Some Out_of_fuel
           else begin
             let i = Gis_util.Vec.get body idx in
             issue st i;
             ignore (execute st i)
           end
         end
       done;
       if !stop = None then begin
         if st.executed >= fuel then stop := Some Out_of_fuel
         else begin
           let t = b.Block.term in
           issue st t;
           match execute st t with
           | Some target -> block := Cfg.block_of_label cfg target
           | None -> (
               match Instr.kind t with
               | Instr.Halt -> stop := Some Halted
               | _ -> stop := Some (Trap "fell off a non-halt terminator"))
         end
       end
     done
   with Trapped m -> stop := Some (Trap m));
  Metrics.incr m_runs;
  Metrics.incr ~by:st.executed m_instrs;
  Metrics.observe m_issue_span (float_of_int st.cursor);
  let dump tbl = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []) in
  ( {
      stop = Option.value ~default:(Trap "internal") !stop;
      cycles = st.last_done;
      instructions = st.executed;
      output = List.rev st.out;
      final_memory = dump st.mem;
      final_float_memory = dump st.fmem;
      final_spill_memory = dump st.smem;
      final_spill_float_memory = dump st.sfmem;
      read_int = (fun r -> Hashtbl.find_opt st.ints (Reg.hash r));
      block_counts =
        List.sort compare
          (Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.counts []);
      telemetry = summarize st;
    },
    List.rev st.header_entries )

let run ?fuel ?trace ?frame machine cfg input =
  fst
    (run_with_header
       ~fuel:(Option.value ~default:2_000_000 fuel)
       ?trace ?frame machine cfg ~header:None input)

let profile_fn o label =
  Option.value ~default:0 (List.assoc_opt label o.block_counts)

let observables o =
  Fmt.str "@[<v>stop=%a@,out=[%a]@,mem=[%a]@,fmem=[%a]@]" pp_stop_reason o.stop
    Fmt.(list ~sep:semi string)
    o.output
    Fmt.(list ~sep:semi (pair ~sep:(any ":") int int))
    o.final_memory
    Fmt.(list ~sep:semi (pair ~sep:(any ":") int float))
    o.final_float_memory

let cycles_per_iteration ?(fuel = 2_000_000) machine cfg ~header input =
  let outcome, entries = run_with_header ~fuel machine cfg ~header:(Some header) input in
  ignore outcome;
  match entries with
  | [] | [ _ ] -> failwith "cycles_per_iteration: header entered fewer than twice"
  | first :: _ ->
      let last = List.nth entries (List.length entries - 1) in
      float_of_int (last - first) /. float_of_int (List.length entries - 1)
