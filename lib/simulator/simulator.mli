(** Functional and timing simulation of the parametric machine.

    The simulator plays two roles:

    - {b Semantics}: it executes the program — registers, memory,
      branches, calls — producing an observable trace (call outputs and
      final memory). Scheduling must never change these observables;
      the test suite checks exactly that.
    - {b Timing}: it assigns every dynamically executed instruction an
      issue cycle under the paper's machine model (Section 2): issue
      cycles are non-decreasing in program order (in-order issue), each
      unit type issues at most its unit count per cycle (units are fully
      pipelined), and a consumer of a register issues no earlier than
      [issue(producer) + exec(producer) + delay(producer, consumer)] —
      the hardware-interlock rule. This model reproduces the paper's
      hand counts: Figure 2 runs in 20–22 cycles per iteration, Figure 5
      in 12–13, Figure 6 in 11–12.

    Calls are builtins: ["print_int"] appends its argument to the
    output trace; unknown names trap. *)

type input = {
  int_regs : (Gis_ir.Reg.t * int) list;  (** initial GPR values *)
  float_regs : (Gis_ir.Reg.t * float) list;
  memory : (int * int) list;  (** byte address (4-aligned) -> word *)
  float_memory : (int * float) list;  (** byte address (8-aligned) -> double *)
  spill_memory : (int * int) list;
      (** initial contents of the spill segment (slot offset -> word);
          only reachable through the [frame] register, see {!run} *)
  spill_float_memory : (int * float) list;
}

val no_input : input

type stop_reason = Halted | Out_of_fuel | Trap of string

val pp_stop_reason : stop_reason Fmt.t

type outcome = {
  stop : stop_reason;
  cycles : int;  (** issue cycle of the last instruction + its latency *)
  instructions : int;  (** dynamically executed instructions *)
  output : string list;  (** call trace, oldest first *)
  final_memory : (int * int) list;  (** sorted by address *)
  final_float_memory : (int * float) list;
  final_spill_memory : (int * int) list;
      (** final contents of the spill segment — compiler-private state,
          excluded from {!observables}; empty unless [run] was given a
          [frame] register *)
  final_spill_float_memory : (int * float) list;
  read_int : Gis_ir.Reg.t -> int option;  (** final register contents *)
  block_counts : (Gis_ir.Label.t * int) list;
      (** dynamic execution count of every block entered at least once —
          the profile information the paper's introduction mentions
          ("branch probabilities, whenever available, e.g. computed by
          profiling") *)
  telemetry : Gis_obs.Trace.summary;
      (** stall-attributed timing breakdown: per-unit-type utilization
          histograms, interlock / store-queue / unit-busy stall totals
          (which together account for every non-issue cycle up to the
          last issue), per-block cycle breakdowns, and — when [run] was
          given [~trace:true] — the full per-issue event log *)
}

val run :
  ?fuel:int ->
  ?trace:bool ->
  ?frame:Gis_ir.Reg.t ->
  Gis_machine.Machine.t ->
  Gis_ir.Cfg.t ->
  input ->
  outcome
(** [fuel] bounds the number of dynamic instructions (default 2_000_000).
    [trace] (default false) additionally records one
    {!Gis_obs.Trace.event} per dynamic instruction into
    [outcome.telemetry.events] — the input to
    {!Gis_obs.Report.pp_issue_diagram}. Aggregated telemetry is always
    collected.

    [frame] names the register allocator's spill frame base: loads and
    stores whose base register {e is} [frame] (by register identity —
    not by the numeric address, which program arithmetic could forge)
    read and write a dedicated spill segment disjoint from program
    memory. Out-of-bounds program accesses therefore can never alias
    spill slots, and spill traffic never appears in {!observables}. *)

val profile_fn : outcome -> Gis_ir.Label.t -> int
(** Lookup into {!field-block_counts}; 0 for blocks never executed. *)

val observables : outcome -> string
(** A canonical rendering of everything scheduling must preserve:
    stop reason, output trace and final memories (registers excluded —
    renaming may legitimately change them). *)

val corrupt_wide_add_for_testing : bool ref
(** Fault injection for the fuzzer's self-test ONLY: while [true],
    integer additions come out off by one on machines with more than
    two fixed-point units (machine-dependent on purpose, so the
    fuzzer's cross-machine trace comparison is what catches it).
    [false] by default; tests that set it must restore it. *)

val cycles_per_iteration :
  ?fuel:int ->
  Gis_machine.Machine.t ->
  Gis_ir.Cfg.t ->
  header:Gis_ir.Label.t ->
  input ->
  float
(** Average issue-to-issue distance between successive dynamic entries
    to [header] — the per-iteration cycle count used throughout the
    paper's running example. Raises [Failure] if the label is entered
    fewer than twice. *)
