(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 6) plus the ablations called out in DESIGN.md.

     dune exec bench/main.exe
     dune exec bench/main.exe -- --json            # also write BENCH_gis.json
     dune exec bench/main.exe -- --json out.json

   Tables:
     E1-E3  Figures 2/5/6 — minmax cycles per iteration at each level
     E4     Figure 7      — compile-time overhead of global scheduling
     E5     Figure 8      — run-time improvement on the SPEC proxies
     E6     Section 5.3   — the blocked speculative motion
     A1     ablation      — issue-width sweep
     A2     ablation      — heuristic rule ordering
     A3     ablation      — renaming / unrolling / rotation / pruning
     A4     extension     — register-web splitting (Section 4.2)
     A5     extension     — n-branch speculation (Definition 7)
     A6     extension     — profile-guided speculation
     A7     extension     — detailed machine model for the local pass
     A8     extension     — restricted scheduling-with-duplication
     R1     extension     — register allocation spill cost (on/off/tight)

   E4 uses Bechamel (one Test.make per program+configuration); the other
   tables are simulator measurements, which are deterministic. Every
   table function returns its data as JSON so --json can dump the whole
   evaluation machine-readably. *)

open Gis_ir
open Gis_machine
open Gis_core
open Gis_sim
open Gis_frontend
open Gis_workloads
open Gis_obs

let rs6k = Machine.rs6k

let hr title = Fmt.pr "@.=== %s ===@." title

(* ------------------------------------------------------------------ *)
(* E1-E3: Figures 2/5/6                                                *)
(* ------------------------------------------------------------------ *)

let fig_config level =
  {
    Config.default with
    Config.level;
    unroll_small_loops = false;
    rotate_small_loops = false;
  }

let minmax_elements =
  let rng = Prng.create ~seed:5 in
  List.init 64 (fun _ -> Prng.int rng 1000)

let bench_figures_256 () =
  hr "E1-E3: minmax cycles/iteration (Figures 2, 5, 6)";
  let t = Minmax.build () in
  let input = Minmax.input t minmax_elements in
  let measure level =
    let cfg = Cfg.deep_copy t.Minmax.cfg in
    ignore (Pipeline.run rs6k (fig_config level) cfg);
    Simulator.cycles_per_iteration rs6k cfg ~header:t.Minmax.loop_header input
  in
  let rows =
    [
      ("Figure 2 (base, local)", "local", "20-22", measure Config.Local);
      ("Figure 5 (useful only)", "useful", "12-13", measure Config.Useful);
      ("Figure 6 (+speculative)", "speculative", "11-12",
       measure Config.Speculative);
    ]
  in
  Fmt.pr "  %-26s | paper      | measured@." "schedule";
  Fmt.pr "  %-26s-+------------+---------@." (String.make 26 '-');
  List.iter
    (fun (name, _, paper, v) -> Fmt.pr "  %-26s | %-10s | %5.1f@." name paper v)
    rows;
  Json.List
    (List.map
       (fun (name, level, paper, v) ->
         Json.Obj
           [
             ("figure", Json.String name);
             ("level", Json.String level);
             ("paper_cycles", Json.String paper);
             ("cycles_per_iteration", Json.Float v);
           ])
       rows)

(* ------------------------------------------------------------------ *)
(* E4: Figure 7 — compile-time overhead, via Bechamel                  *)
(* ------------------------------------------------------------------ *)

let nanoseconds_of_test test =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:300 ~quota:(Time.second 0.4) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ instance ] test in
  let results = Analyze.all ols instance raw in
  Hashtbl.fold
    (fun _name ols_result acc ->
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) -> est
      | Some [] | None -> acc)
    results nan

let bench_figure7 ~deterministic () =
  hr "E4: compile-time overhead (Figure 7)";
  Fmt.pr
    "  (BASE = parse + lower + local scheduling; CTO = extra time for the \
     full global pipeline)@.";
  Fmt.pr "  %-10s | base (us) | full (us) | CTO meas. | CTO paper@." "program";
  let rows =
    List.map
      (fun (p : Spec_proxy.t) ->
        let compile config () =
          let compiled = Codegen.compile_string p.Spec_proxy.source in
          ignore (Pipeline.run rs6k config compiled.Codegen.cfg)
        in
        let t_base =
          nanoseconds_of_test
            (Bechamel.Test.make
               ~name:(p.Spec_proxy.name ^ "-base")
               (Bechamel.Staged.stage (compile Config.base)))
        in
        let t_full =
          nanoseconds_of_test
            (Bechamel.Test.make
               ~name:(p.Spec_proxy.name ^ "-full")
               (Bechamel.Staged.stage (compile Config.speculative)))
        in
        let paper_cto =
          match p.Spec_proxy.name with
          | "li" -> "13%"
          | "eqntott" -> "17%"
          | "espresso" -> "12%"
          | "gcc" -> "13%"
          | _ -> "?"
        in
        let cto = 100.0 *. ((t_full /. t_base) -. 1.0) in
        Fmt.pr "  %-10s | %9.1f | %9.1f | %+8.0f%% | %s@." p.Spec_proxy.name
          (t_base /. 1e3) (t_full /. 1e3) cto paper_cto;
        let zf x = if deterministic then 0.0 else x in
        Json.Obj
          [
            ("program", Json.String p.Spec_proxy.name);
            ("base_us", Json.Float (zf (t_base /. 1e3)));
            ("full_us", Json.Float (zf (t_full /. 1e3)));
            ("cto_percent", Json.Float (zf cto));
            ("paper_cto", Json.String paper_cto);
          ])
      Spec_proxy.all
  in
  Json.List rows

(* ------------------------------------------------------------------ *)
(* E5: Figure 8 — run-time improvement                                 *)
(* ------------------------------------------------------------------ *)

let bench_figure8 () =
  hr "E5: run-time improvement on SPEC proxies (Figure 8)";
  Fmt.pr "  %-10s | base cyc | useful RTI (paper) | spec RTI (paper)@." "program";
  let paper = [ ("li", ("2.0%", "6.9%")); ("eqntott", ("7.1%", "7.3%"));
                ("espresso", ("-0.5%", "0%")); ("gcc", ("-1.5%", "0%")) ] in
  let rows =
    List.map
      (fun (p : Spec_proxy.t) ->
        let compiled = Spec_proxy.compile p in
        let input = p.Spec_proxy.setup compiled in
        let cycles config =
          let cfg = Cfg.deep_copy compiled.Codegen.cfg in
          ignore (Pipeline.run rs6k config cfg);
          (Simulator.run rs6k cfg input).Simulator.cycles
        in
        let base = cycles Config.base in
        let useful = cycles Config.useful_only in
        let spec = cycles Config.speculative in
        let rti x = 100.0 *. (1.0 -. (float_of_int x /. float_of_int base)) in
        let pu, ps = List.assoc p.Spec_proxy.name paper in
        Fmt.pr "  %-10s | %8d | %8.1f%% (%5s) | %8.1f%% (%4s)@."
          p.Spec_proxy.name base (rti useful) pu (rti spec) ps;
        Json.Obj
          [
            ("program", Json.String p.Spec_proxy.name);
            ("base_cycles", Json.Int base);
            ("useful_cycles", Json.Int useful);
            ("speculative_cycles", Json.Int spec);
            ("useful_rti_percent", Json.Float (rti useful));
            ("speculative_rti_percent", Json.Float (rti spec));
            ("paper_useful_rti", Json.String pu);
            ("paper_speculative_rti", Json.String ps);
          ])
      Spec_proxy.all
  in
  Json.List rows

(* ------------------------------------------------------------------ *)
(* E6: Section 5.3 — the rejected motion                               *)
(* ------------------------------------------------------------------ *)

let bench_section53 () =
  hr "E6: Section 5.3 speculation safety";
  let s = Section53.build () in
  let reports =
    Global_sched.schedule rs6k (fig_config Config.Speculative) s.Section53.cfg
  in
  let moved = ref [] and blocked = ref [] in
  List.iter
    (fun (r : Global_sched.region_report) ->
      List.iter
        (fun (m : Global_sched.move) ->
          Fmt.pr "  moved:   uid %d  %a -> %a@." m.Global_sched.uid Label.pp
            m.Global_sched.from_label Label.pp m.Global_sched.to_label;
          moved :=
            Json.Obj
              [
                ("uid", Json.Int m.Global_sched.uid);
                ("from", Json.String m.Global_sched.from_label);
                ("to", Json.String m.Global_sched.to_label);
              ]
            :: !moved)
        r.Global_sched.moves;
      List.iter
        (fun (b : Global_sched.blocked) ->
          let reason =
            match b.Global_sched.reason with
            | `Live_on_exit reg -> Fmt.str "%a live on exit" Reg.pp reg
            | `Rename_unsafe reg -> Fmt.str "%a not renameable" Reg.pp reg
          in
          Fmt.pr "  blocked: uid %d  (%s)@." b.Global_sched.blocked_uid reason;
          blocked :=
            Json.Obj
              [
                ("uid", Json.Int b.Global_sched.blocked_uid);
                ("reason", Json.String reason);
              ]
            :: !blocked)
        r.Global_sched.blocked)
    reports;
  Fmt.pr "  (the paper requires exactly one of x=5 / x=3 to move)@.";
  Json.Obj
    [
      ("moved", Json.List (List.rev !moved));
      ("blocked", Json.List (List.rev !blocked));
    ]

(* ------------------------------------------------------------------ *)
(* A1: issue-width sweep                                               *)
(* ------------------------------------------------------------------ *)

let bench_width_sweep () =
  hr "A1: issue-width sweep (speculative RTI over same-width base)";
  let programs =
    ("minmax",
     (let t = Minmax.build () in
      (t.Minmax.cfg, Minmax.input t minmax_elements)))
    :: List.map
         (fun (p : Spec_proxy.t) ->
           let compiled = Spec_proxy.compile p in
           (p.Spec_proxy.name, (compiled.Codegen.cfg, p.Spec_proxy.setup compiled)))
         Spec_proxy.all
  in
  Fmt.pr "  %-10s |  width 1 |  width 2 |  width 4 |  width 8@." "program";
  let rows =
    List.map
      (fun (name, (cfg0, input)) ->
        let rtis =
          List.map
            (fun width ->
              let machine = Machine.superscalar ~width in
              let cycles config =
                let cfg = Cfg.deep_copy cfg0 in
                ignore (Pipeline.run machine config cfg);
                (Simulator.run machine cfg input).Simulator.cycles
              in
              let base = cycles Config.base in
              let spec = cycles Config.speculative in
              (width, 100.0 *. (1.0 -. (float_of_int spec /. float_of_int base))))
            [ 1; 2; 4; 8 ]
        in
        Fmt.pr "  %-10s |%a@." name
          Fmt.(list ~sep:(any " |") (fun ppf (_, r) -> pf ppf "%8.1f%%" r))
          rtis;
        Json.Obj
          [
            ("program", Json.String name);
            ( "rti_percent_by_width",
              Json.Obj
                (List.map
                   (fun (w, r) -> (string_of_int w, Json.Float r))
                   rtis) );
          ])
      programs
  in
  Json.List rows

(* ------------------------------------------------------------------ *)
(* A2: heuristic-order ablation                                        *)
(* ------------------------------------------------------------------ *)

let bench_heuristics () =
  hr "A2: heuristic ordering ablation (minmax + proxies, rs6k cycles)";
  let orders =
    [
      ("paper (class,D,CP,ord)", Priority_rule.paper_order);
      ("no delay heuristic", Priority_rule.[ Useful_first; Max_critical_path; Program_order ]);
      ("no critical path", Priority_rule.[ Useful_first; Max_delay; Program_order ]);
      ("program order only", Priority_rule.[ Useful_first; Program_order ]);
      ("speculative first", Priority_rule.[ Max_delay; Max_critical_path; Program_order ]);
    ]
  in
  let programs =
    ("minmax",
     (let t = Minmax.build () in
      (t.Minmax.cfg, Minmax.input t minmax_elements)))
    :: List.map
         (fun (p : Spec_proxy.t) ->
           let compiled = Spec_proxy.compile p in
           (p.Spec_proxy.name, (compiled.Codegen.cfg, p.Spec_proxy.setup compiled)))
         Spec_proxy.all
  in
  Fmt.pr "  %-24s" "priority rules";
  List.iter (fun (name, _) -> Fmt.pr " | %8s" name) programs;
  Fmt.pr "@.";
  let rows =
    List.map
      (fun (label, rules) ->
        Fmt.pr "  %-24s" label;
        let cells =
          List.map
            (fun (name, (cfg0, input)) ->
              let cfg = Cfg.deep_copy cfg0 in
              ignore
                (Pipeline.run rs6k { Config.speculative with Config.rules } cfg);
              let c = (Simulator.run rs6k cfg input).Simulator.cycles in
              Fmt.pr " | %8d" c;
              (name, Json.Int c))
            programs
        in
        Fmt.pr "@.";
        Json.Obj
          [ ("rules", Json.String label); ("cycles", Json.Obj cells) ])
      orders
  in
  Json.List rows

(* ------------------------------------------------------------------ *)
(* A3: design-choice ablation                                          *)
(* ------------------------------------------------------------------ *)

let bench_ablation () =
  hr "A3: design-choice ablation (rs6k cycles, lower is better)";
  let variants =
    [
      ("full pipeline", Config.speculative);
      ("useful only", Config.useful_only);
      ("no renaming", { Config.speculative with Config.rename = false });
      ("no unroll/rotate",
       { Config.speculative with Config.unroll_small_loops = false;
         rotate_small_loops = false });
      ("no transitive pruning",
       { Config.speculative with Config.prune_transitive = false });
      ("no local post-pass",
       { Config.speculative with Config.local_post_pass = false });
      ("base (local only)", Config.base);
    ]
  in
  let programs =
    ("minmax",
     (let t = Minmax.build () in
      (t.Minmax.cfg, Minmax.input t minmax_elements)))
    :: List.map
         (fun (p : Spec_proxy.t) ->
           let compiled = Spec_proxy.compile p in
           (p.Spec_proxy.name, (compiled.Codegen.cfg, p.Spec_proxy.setup compiled)))
         Spec_proxy.all
  in
  Fmt.pr "  %-24s" "configuration";
  List.iter (fun (name, _) -> Fmt.pr " | %8s" name) programs;
  Fmt.pr "@.";
  let rows =
    List.map
      (fun (label, config) ->
        Fmt.pr "  %-24s" label;
        let cells =
          List.map
            (fun (name, (cfg0, input)) ->
              let cfg = Cfg.deep_copy cfg0 in
              ignore (Pipeline.run rs6k config cfg);
              let c = (Simulator.run rs6k cfg input).Simulator.cycles in
              Fmt.pr " | %8d" c;
              (name, Json.Int c))
            programs
        in
        Fmt.pr "@.";
        Json.Obj
          [ ("configuration", Json.String label); ("cycles", Json.Obj cells) ])
      variants
  in
  Json.List rows

(* ------------------------------------------------------------------ *)
(* A4-A6: extension ablations                                          *)
(* ------------------------------------------------------------------ *)

let proxy_programs () =
  ("minmax",
   (let t = Minmax.build () in
    (t.Minmax.cfg, Minmax.input t minmax_elements)))
  :: List.map
       (fun (p : Spec_proxy.t) ->
         let compiled = Spec_proxy.compile p in
         (p.Spec_proxy.name, (compiled.Codegen.cfg, p.Spec_proxy.setup compiled)))
       Spec_proxy.all

let run_variant cfg0 input config =
  let cfg = Cfg.deep_copy cfg0 in
  let stats = Pipeline.run rs6k config cfg in
  let moves = Pipeline.moves stats in
  let renames =
    List.length
      (List.filter (fun (m : Global_sched.move) -> m.Global_sched.renamed <> None) moves)
  in
  ((Simulator.run rs6k cfg input).Simulator.cycles, List.length moves, renames)

let variant_json (cycles, moves, renames) =
  Json.Obj
    [
      ("cycles", Json.Int cycles);
      ("moves", Json.Int moves);
      ("renames", Json.Int renames);
    ]

(* ------------------------------------------------------------------ *)
(* M1: machine-model sweep                                             *)
(* ------------------------------------------------------------------ *)

(* The paper's closing remark anticipates "even bigger payoffs in
   machines with a larger number of computational units": absolute
   cycles per workload at every level and issue width (the promoted
   examples/machine_sweep table). Unlike A1's relative-improvement
   percentages, these are absolute [_cycles] metrics, so the
   --baseline --check regression gate covers every cell. *)
let bench_machine_sweep () =
  hr "M1: machine sweep (absolute cycles by issue width, all levels)";
  let widths = [ 1; 2; 4; 8 ] in
  let rows =
    List.map
      (fun (name, (cfg0, input)) ->
        Fmt.pr "  %s:@." name;
        Fmt.pr "    width |    base |  useful |    spec | spec RTI@.";
        let cells =
          List.map
            (fun width ->
              let machine = Machine.superscalar ~width in
              let cycles config =
                let cfg = Cfg.deep_copy cfg0 in
                ignore (Pipeline.run machine config cfg);
                (Simulator.run machine cfg input).Simulator.cycles
              in
              let base = cycles Config.base in
              let useful = cycles Config.useful_only in
              let spec = cycles Config.speculative in
              Fmt.pr "    %5d | %7d | %7d | %7d | %7.1f%%@." width base
                useful spec
                (100.0 *. (1.0 -. (float_of_int spec /. float_of_int base)));
              ( string_of_int width,
                Json.Obj
                  [
                    ("base_cycles", Json.Int base);
                    ("useful_cycles", Json.Int useful);
                    ("speculative_cycles", Json.Int spec);
                  ] ))
            widths
        in
        Json.Obj
          [ ("program", Json.String name); ("by_width", Json.Obj cells) ])
      (proxy_programs ())
  in
  Json.List rows

(* ------------------------------------------------------------------ *)
(* G1: gap to lower bound                                              *)
(* ------------------------------------------------------------------ *)

(* How far each achieved schedule sits above the dependence/resource
   lower bound of [Gis_bounds]: five workloads x three levels x the M1
   issue widths. The accounting identity (achieved = lower bound +
   attributed gap) is enforced on every cell, and the absolute
   [_cycles] fields join the --baseline --check regression gate, so a
   schedule that drifts away from its bound fails CI even when raw
   cycle counts stay within tolerance elsewhere. *)
let bench_gap_bounds () =
  hr "G1: gap to lower bound (achieved vs max(chain, resource))";
  let module Bounds = Gis_bounds.Bounds in
  let levels =
    [
      ("local", Config.base);
      ("useful", Config.useful_only);
      ("speculative", Config.speculative);
    ]
  in
  let widths = [ 1; 2; 4; 8 ] in
  let rows =
    List.map
      (fun (name, (cfg0, input)) ->
        Fmt.pr "  %s:@." name;
        Fmt.pr "    %-12s | width | achieved |   bound |    gap@." "level";
        let cells =
          List.concat_map
            (fun (lname, config) ->
              List.map
                (fun width ->
                  let machine = Machine.superscalar ~width in
                  let cfg = Cfg.deep_copy cfg0 in
                  ignore (Pipeline.run machine config cfg);
                  let os = Simulator.run machine cfg input in
                  let b =
                    Bounds.compute ~machine
                      ~halted:(os.Simulator.stop = Simulator.Halted)
                      cfg os.Simulator.telemetry
                  in
                  if not (Bounds.identity_holds b) then begin
                    Fmt.epr "G1: bound identity violated on %s/%s/w%d@." name
                      lname width;
                    exit 1
                  end;
                  Fmt.pr "    %-12s | %5d | %8d | %7d | %6d@." lname width
                    b.Bounds.achieved b.Bounds.lower_bound b.Bounds.gap;
                  ( Fmt.str "%s.w%d" lname width,
                    Json.Obj
                      [
                        ("achieved_cycles", Json.Int b.Bounds.achieved);
                        ("lower_bound_cycles", Json.Int b.Bounds.lower_bound);
                        ("gap_cycles", Json.Int b.Bounds.gap);
                      ] ))
                widths)
            levels
        in
        Json.Obj [ ("program", Json.String name); ("by_cell", Json.Obj cells) ])
      (proxy_programs ())
  in
  Fmt.pr "  (bound identity exact on every cell)@.";
  Json.List rows

(* ------------------------------------------------------------------ *)
(* A1 (disambiguation): symbolic affine addresses vs same-base rule    *)
(* ------------------------------------------------------------------ *)

(* The symbolic-address refinement's end-to-end effect: five workloads
   x three levels, scheduled with disambiguation off (the syntactic
   same-base rule alone, --no-disambig) and on (the default). Cycles
   and the dependence/resource lower bound enter as absolute [_cycles]
   metrics, so the --baseline --check gate holds the refinement to the
   same 2% tolerance as every other table. The two schedules must
   produce identical observable traces — disambiguation may only
   reorder memory operations it proved independent, never change what
   the program computes — so any divergence aborts the run. *)
let bench_mem_disambiguation () =
  hr "A1: memory disambiguation (affine symbolic addresses vs same-base rule)";
  let module Bounds = Gis_bounds.Bounds in
  let levels =
    [
      ("local", Config.base);
      ("useful", Config.useful_only);
      ("speculative", Config.speculative);
    ]
  in
  let rows =
    List.map
      (fun (name, (cfg0, input)) ->
        Fmt.pr "  %s:@." name;
        Fmt.pr "    %-12s | off: cyc / bound / gap | on: cyc / bound / gap@."
          "level";
        let cells =
          List.map
            (fun (lname, config) ->
              let run disambig =
                let cfg = Cfg.deep_copy cfg0 in
                ignore
                  (Pipeline.run rs6k
                     { config with Config.disambiguate = disambig }
                     cfg);
                let os = Simulator.run rs6k cfg input in
                let b =
                  Bounds.compute ~disambig ~machine:rs6k
                    ~halted:(os.Simulator.stop = Simulator.Halted)
                    cfg os.Simulator.telemetry
                in
                (os, b)
              in
              let ooff, boff = run false in
              let oon, bon = run true in
              if
                not
                  (String.equal
                     (Simulator.observables ooff)
                     (Simulator.observables oon))
              then begin
                Fmt.epr "A1: disambiguation changed observables on %s/%s@."
                  name lname;
                exit 1
              end;
              Fmt.pr "    %-12s | %8d / %5d / %4d | %8d / %5d / %4d@." lname
                ooff.Simulator.cycles boff.Bounds.lower_bound boff.Bounds.gap
                oon.Simulator.cycles bon.Bounds.lower_bound bon.Bounds.gap;
              ( lname,
                Json.Obj
                  [
                    ("off_cycles", Json.Int ooff.Simulator.cycles);
                    ( "off_lower_bound_cycles",
                      Json.Int boff.Bounds.lower_bound );
                    ("off_gap_cycles", Json.Int boff.Bounds.gap);
                    ("on_cycles", Json.Int oon.Simulator.cycles);
                    ("on_lower_bound_cycles", Json.Int bon.Bounds.lower_bound);
                    ("on_gap_cycles", Json.Int bon.Bounds.gap);
                  ] ))
            levels
        in
        Json.Obj
          [ ("program", Json.String name); ("by_level", Json.Obj cells) ])
      (proxy_programs ())
  in
  Fmt.pr "  (observable traces identical off/on in every cell)@.";
  Json.List rows

let bench_webs () =
  hr "A4: register-web splitting (Section 4.2 renaming pre-pass)";
  Fmt.pr "  %-10s | webs off: cyc/moves/renames | webs on: cyc/moves/renames@."
    "program";
  let rows =
    List.map
      (fun (name, (cfg0, input)) ->
        let ((c0, m0, r0) as off) = run_variant cfg0 input Config.speculative in
        let ((c1, m1, r1) as on) =
          run_variant cfg0 input
            { Config.speculative with Config.split_webs = true }
        in
        Fmt.pr "  %-10s | %9d / %3d / %2d       | %9d / %3d / %2d@." name c0 m0
          r0 c1 m1 r1;
        Json.Obj
          [
            ("program", Json.String name);
            ("webs_off", variant_json off);
            ("webs_on", variant_json on);
          ])
      (proxy_programs ())
  in
  Json.List rows

let bench_speculation_degree () =
  hr "A5: speculation degree (Definition 7; paper prototype = 1)";
  Fmt.pr "  %-10s |  degree 1 (moves) |  degree 2 (moves) |  degree 3 (moves)@."
    "program";
  let rows =
    List.map
      (fun (name, (cfg0, input)) ->
        let cells =
          List.map
            (fun d ->
              let c, m, _ =
                run_variant cfg0 input
                  { Config.speculative with Config.max_speculation_degree = d }
              in
              (d, c, m))
            [ 1; 2; 3 ]
        in
        Fmt.pr "  %-10s |%a@." name
          Fmt.(
            list ~sep:(any " |") (fun ppf (_, c, m) -> pf ppf " %8d (%3d)" c m))
          cells;
        Json.Obj
          [
            ("program", Json.String name);
            ( "by_degree",
              Json.Obj
                (List.map
                   (fun (d, c, m) ->
                     ( string_of_int d,
                       Json.Obj
                         [ ("cycles", Json.Int c); ("moves", Json.Int m) ] ))
                   cells) );
          ])
      (proxy_programs ())
  in
  Json.List rows

let bench_profile_guided () =
  hr "A6: profile-guided speculation (threshold on execution probability)";
  Fmt.pr "  %-10s | blind cyc/spec-moves | guided 0.3 | guided 0.7@." "program";
  let rows =
    List.map
      (fun (name, (cfg0, input)) ->
        let profile = Simulator.profile_fn (Simulator.run rs6k cfg0 input) in
        let cell threshold =
          let config =
            if threshold <= 0.0 then Config.speculative
            else
              {
                Config.speculative with
                Config.profile = Some profile;
                min_speculation_probability = threshold;
              }
          in
          let cfg = Cfg.deep_copy cfg0 in
          let stats = Pipeline.run rs6k config cfg in
          let spec_moves =
            List.length
              (List.filter
                 (fun (m : Global_sched.move) -> m.Global_sched.speculative)
                 (Pipeline.moves stats))
          in
          ((Simulator.run rs6k cfg input).Simulator.cycles, spec_moves)
        in
        let b, bm = cell 0.0 in
        let g3, g3m = cell 0.3 in
        let g7, g7m = cell 0.7 in
        Fmt.pr "  %-10s | %10d / %3d     | %6d/%3d | %6d/%3d@." name b bm g3
          g3m g7 g7m;
        let cell_json (c, m) =
          Json.Obj [ ("cycles", Json.Int c); ("spec_moves", Json.Int m) ]
        in
        Json.Obj
          [
            ("program", Json.String name);
            ("blind", cell_json (b, bm));
            ("guided_0_3", cell_json (g3, g3m));
            ("guided_0_7", cell_json (g7, g7m));
          ])
      (proxy_programs ())
  in
  Json.List rows

let stencil_program () =
  (* A store-then-reload kernel: the detailed model's store->load delay
     gives the local scheduler a reason to pull independent work in
     between. *)
  let source =
    {|
int a[256];
int b[256];
int n;
int i;
int h;
int u;
int v;
i = 0;
h = 0;
while (i < n) {
  b[i] = a[i] + h;
  u = i * 3;
  v = u + (i >> 1);
  h = b[i] ^ v;
  i = i + 1;
}
print(h);
|}
  in
  let compiled = Codegen.compile_string source in
  let input =
    {
      Simulator.no_input with
      Simulator.int_regs = [ (Codegen.var_reg compiled "n", 200) ];
      memory =
        Codegen.array_input compiled
          [ ("a", List.init 200 (fun k -> k * 7 mod 113)) ];
    }
  in
  ("stencil", (compiled.Codegen.cfg, input))

let bench_two_model () =
  hr "A7: two-model design (Section 5.1's detailed local scheduler)";
  Fmt.pr
    "  (cycles simulated on rs6k-detailed, whose store->load delay only \
     the local post-pass may know about)@.";
  Fmt.pr "  %-10s | coarse post-pass | detailed post-pass@." "program";
  let detailed = Machine.rs6k_detailed in
  let rows =
    List.map
      (fun (name, (cfg0, input)) ->
        let run config =
          let cfg = Cfg.deep_copy cfg0 in
          ignore (Pipeline.run rs6k config cfg);
          (Simulator.run detailed cfg input).Simulator.cycles
        in
        let coarse = run Config.speculative in
        let refined =
          run { Config.speculative with Config.local_machine = Some detailed }
        in
        Fmt.pr "  %-10s | %16d | %16d@." name coarse refined;
        Json.Obj
          [
            ("program", Json.String name);
            ("coarse_cycles", Json.Int coarse);
            ("detailed_cycles", Json.Int refined);
          ])
      (proxy_programs () @ [ stencil_program () ])
  in
  Json.List rows

(* A diamond join fed by a slow divide: only duplication can lift the
   join's dependent add into the arms (see test_extensions.ml). *)
let join_div_program () =
  let module B = Gis_ir.Builder in
  let g = Reg.Gen.create () in
  let p = Reg.Gen.reserve g Reg.Gpr 1 in
  let q = Reg.Gen.reserve g Reg.Gpr 2 in
  let m = Reg.Gen.fresh g Reg.Gpr in
  let c = Reg.Gen.fresh g Reg.Cr in
  let a1 = Reg.Gen.fresh g Reg.Gpr in
  let t = Reg.Gen.fresh g Reg.Gpr in
  let u = Reg.Gen.fresh g Reg.Gpr in
  let cfg =
    B.func ~reg_gen:g
      [
        ( "E",
          [ B.binop Instr.Div ~dst:m ~lhs:p ~rhs:(Instr.Imm 3);
            B.cmpi ~dst:c ~lhs:p 0 ],
          B.bt ~cr:c ~cond:Instr.Gt ~taken:"L" ~fallthru:"R" );
        ("L", [ B.addi ~dst:a1 ~lhs:p 1 ], B.jmp "J");
        ("R", [ B.addi ~dst:a1 ~lhs:q 2 ], B.jmp "J");
        ( "J",
          [ B.add ~dst:t ~lhs:m ~rhs:q; B.add ~dst:u ~lhs:t ~rhs:a1;
            B.call "print_int" [ u ] ],
          Instr.Halt );
      ]
  in
  let input =
    { Simulator.no_input with Simulator.int_regs = [ (p, 41); (q, 7) ] }
  in
  ("join-div", (cfg, input))

let bench_duplication () =
  hr "A8: scheduling with duplication (Definition 6 / Section 7 future work)";
  Fmt.pr "  %-10s | off: cyc | on: cyc | duplicated motions@." "program";
  let rows =
    List.map
      (fun (name, (cfg0, input)) ->
        let run on =
          let cfg = Cfg.deep_copy cfg0 in
          let stats =
            Pipeline.run rs6k
              { Config.speculative with Config.allow_duplication = on }
              cfg
          in
          let dups =
            List.length
              (List.filter
                 (fun (m : Global_sched.move) ->
                   m.Global_sched.duplicated_into <> [])
                 (Pipeline.moves stats))
          in
          ((Simulator.run rs6k cfg input).Simulator.cycles, dups)
        in
        let off, _ = run false in
        let on, dups = run true in
        Fmt.pr "  %-10s | %8d | %7d | %d@." name off on dups;
        Json.Obj
          [
            ("program", Json.String name);
            ("off_cycles", Json.Int off);
            ("on_cycles", Json.Int on);
            ("duplicated_moves", Json.Int dups);
          ])
      (proxy_programs () @ [ stencil_program (); join_div_program () ])
  in
  Fmt.pr "  (off by default: the paper's prototype forbids duplication)@.";
  Json.List rows

(* ------------------------------------------------------------------ *)
(* R1: register allocation                                             *)
(* ------------------------------------------------------------------ *)

let regalloc_input compiled ~elements ~seed =
  (* Same default input rule as gisc and the batch driver. *)
  let rng = Prng.create ~seed in
  let arrays =
    List.map
      (fun (name, _, len) ->
        (name, List.init (min len elements) (fun _ -> Prng.int rng 1000)))
      compiled.Codegen.arrays
  in
  let n_binding =
    match List.assoc_opt "n" compiled.Codegen.vars with
    | Some reg -> [ (reg, elements) ]
    | None -> []
  in
  {
    Simulator.no_input with
    Simulator.int_regs = n_binding;
    memory = Codegen.array_input compiled arrays;
  }

let bench_regalloc () =
  let module Regalloc = Gis_regalloc.Regalloc in
  hr "R1: register allocation (linear scan + spill code, rs6k cycles)";
  Fmt.pr
    "  (RA off runs on virtual registers; RA on maps to the machine's \
     file and prices any spill code in cycles)@.";
  Fmt.pr "  %-10s | %8s | %14s | %14s | %s@." "program" "RA off"
    "RA on (spills)" "6 regs (spills)" "verified";
  let sources =
    ("minmax", Minmax.source)
    :: List.map
         (fun (p : Spec_proxy.t) -> (p.Spec_proxy.name, p.Spec_proxy.source))
         Spec_proxy.all
  in
  let rows =
    List.map
      (fun (name, src) ->
        Label.reset_fresh_counter ();
        let compiled = Codegen.compile_string src in
        let input = regalloc_input compiled ~elements:64 ~seed:3 in
        let baseline = Cfg.deep_copy compiled.Codegen.cfg in
        ignore (Pipeline.run rs6k Config.base baseline);
        let run ?regs ~regalloc () =
          let cfg = Cfg.deep_copy compiled.Codegen.cfg in
          let config = { Config.speculative with Config.regalloc; regs } in
          let stats = Pipeline.run rs6k config cfg in
          match stats.Pipeline.regalloc with
          | None ->
              ((Simulator.run rs6k cfg input).Simulator.cycles, 0, None)
          | Some alloc ->
              let cycles =
                (Simulator.run ?frame:alloc.Regalloc.frame rs6k cfg
                   (Regalloc.remap_input alloc input))
                  .Simulator.cycles
              in
              let ok =
                match
                  Regalloc.verify ?gprs:regs ?fprs:regs ~machine:rs6k
                    ~baseline ~allocated:cfg alloc input
                with
                | Ok () -> true
                | Error _ -> false
              in
              (cycles, List.length alloc.Regalloc.spilled, Some ok)
        in
        let off, _, _ = run ~regalloc:false () in
        let on, on_spills, on_ok = run ~regalloc:true () in
        let tight, tight_spills, tight_ok = run ~regs:6 ~regalloc:true () in
        let verified =
          on_ok = Some true && tight_ok = Some true
        in
        Fmt.pr "  %-10s | %8d | %8d (%3d) | %8d (%3d) | %s@." name off on
          on_spills tight tight_spills
          (if verified then "yes" else "NO");
        if not verified then begin
          Fmt.epr "R1: allocation verifier failed on %s@." name;
          exit 1
        end;
        Json.Obj
          [
            ("program", Json.String name);
            ("off_cycles", Json.Int off);
            ("on_cycles", Json.Int on);
            ("on_spilled_regs", Json.Int on_spills);
            ("tight_regs", Json.Int 6);
            ("tight_cycles", Json.Int tight);
            ("tight_spilled_regs", Json.Int tight_spills);
            ("verified", Json.Bool verified);
          ])
      sources
  in
  Fmt.pr
    "  (spill counts are registers sent to stack slots; the verifier \
     diffs observables against the symbolic schedule)@.";
  Json.List rows

(* ------------------------------------------------------------------ *)
(* P1: parallel batch compilation                                      *)
(* ------------------------------------------------------------------ *)

let bench_parallel_batch ~deterministic () =
  hr "P1: parallel batch compilation (driver pool, wall-clock)";
  let module D = Gis_driver.Driver in
  (* The four proxies + minmax, plus a generated corpus so the pool has
     enough independent units to keep four domains busy. *)
  let tasks = D.workload_tasks () @ D.corpus_tasks ~seeds:(List.init 11 (fun i -> 100 + i)) in
  let cores = Domain.recommended_domain_count () in
  Fmt.pr "  batch: %d compilation units (workloads + generated corpus)@."
    (List.length tasks);
  Fmt.pr "  host parallelism: %d core%s%s@." cores
    (if cores = 1 then "" else "s")
    (if cores = 1 then
       " — expect no wall-clock speedup (extra domains only add GC \
        rendezvous overhead); determinism is still checked"
     else "");
  let runs =
    List.map
      (fun jobs -> (jobs, D.run ~jobs rs6k Config.speculative tasks))
      [ 1; 2; 4 ]
  in
  let seq = List.assoc 1 runs in
  (* The whole point of the pool: worker count must not change results. *)
  let canon r = Json.to_string (D.report_to_json ~deterministic:true r) in
  List.iter
    (fun (jobs, r) ->
      if r.D.pool.D.failed > 0 then begin
        Fmt.epr "P1: batch failed at jobs=%d@." jobs;
        exit 1
      end;
      if not (String.equal (canon seq) (canon r)) then begin
        Fmt.epr "P1: results at jobs=%d differ from sequential@." jobs;
        exit 1
      end)
    runs;
  Fmt.pr "  results byte-identical across job counts: yes@.";
  Fmt.pr "  %4s | %8s | %7s | %11s@." "jobs" "wall (s)" "speedup" "utilization";
  let rows =
    List.map
      (fun (jobs, r) ->
        let s = D.speedup seq r in
        let u = D.utilization r.D.pool in
        Fmt.pr "  %4d | %8.3f | %6.2fx | %10.0f%%@." jobs
          r.D.pool.D.wall_seconds s (100.0 *. u);
        let zf x = if deterministic then 0.0 else x in
        Json.Obj
          [
            ("jobs", Json.Int jobs);
            ("tasks", Json.Int r.D.pool.D.tasks);
            ("cores", Json.Int (if deterministic then 0 else cores));
            ("wall_seconds", Json.Float (zf r.D.pool.D.wall_seconds));
            ("speedup", Json.Float (zf s));
            ("utilization", Json.Float (zf u));
            ("identical_to_sequential", Json.Bool true);
          ])
      runs
  in
  Json.List rows

(* ------------------------------------------------------------------ *)
(* P2: compiler self-profile                                           *)
(* ------------------------------------------------------------------ *)

let profile_phases =
  [ "unroll"; "global-pass1"; "rotate"; "global-pass2"; "local" ]

(* One profiled pipeline run per workload. The [_bytes] keys join the
   regression gate (looser tolerance + absolute floor, see Regress), so
   an allocation blow-up in one phase fails CI like a cycle regression
   would. Also the source of the [--history] trajectory record. *)
let bench_self_profile ~deterministic () =
  hr "P2: compiler self-profile (allocation per pipeline phase)";
  Fmt.pr
    "  (bytes allocated compiling each workload at the speculative level; \
     identity-checked; seconds scrubbed under --deterministic)@.";
  Fmt.pr "  %-10s | %11s |" "program" "total bytes";
  List.iter (fun p -> Fmt.pr " %8s |" p) profile_phases;
  Fmt.pr " cycles@.";
  let t0 = Span.now () in
  let measured =
    List.map
      (fun (name, (cfg0, input)) ->
        let prof = Prof.create () in
        let config = { Config.speculative with Config.prof = Some prof } in
        let cfg = Cfg.deep_copy cfg0 in
        ignore (Pipeline.run rs6k config cfg);
        let root =
          match Prof.roots prof with
          | [ r ] -> r
          | _ ->
              Fmt.epr "P2: expected exactly one profile tree for %s@." name;
              exit 1
        in
        if not (Prof.identity_ok root) then begin
          Fmt.epr "P2: profile accounting identity violated on %s@." name;
          exit 1
        end;
        let cycles = (Simulator.run rs6k cfg input).Simulator.cycles in
        (name, root, cycles))
      (proxy_programs ())
  in
  let wall_seconds = Span.now () -. t0 in
  let zf x = if deterministic then 0.0 else x in
  let rows =
    List.map
      (fun (name, (root : Prof.node), cycles) ->
        let phase_bytes p =
          match
            List.find_opt
              (fun (c : Prof.node) -> String.equal c.Prof.name p)
              root.Prof.children
          with
          | Some c -> c.Prof.alloc_bytes
          | None -> 0
        in
        Fmt.pr "  %-10s | %11d |" name root.Prof.alloc_bytes;
        List.iter (fun p -> Fmt.pr " %8d |" (phase_bytes p)) profile_phases;
        Fmt.pr " %d@." cycles;
        Json.Obj
          [
            ("program", Json.String name);
            ("alloc_bytes", Json.Int root.Prof.alloc_bytes);
            ("wall_seconds", Json.Float (zf (Prof.seconds_of_ns root.Prof.wall_ns)));
            ( "phases",
              Json.Obj
                (List.map
                   (fun p -> (p ^ "_bytes", Json.Int (phase_bytes p)))
                   profile_phases) );
          ])
      measured
  in
  let total_alloc =
    List.fold_left
      (fun acc (_, (r : Prof.node), _) -> acc + r.Prof.alloc_bytes)
      0 measured
  in
  let per_program_cycles = List.map (fun (n, _, c) -> (n, c)) measured in
  let total_cycles = List.fold_left (fun acc (_, c) -> acc + c) 0 per_program_cycles in
  Fmt.pr "  (accounting identity holds on every workload)@.";
  let history =
    {
      History.time = (if deterministic then 0.0 else Span.now ());
      label = "bench";
      total_cycles;
      wall_seconds;
      total_alloc_bytes = total_alloc;
      per_program_cycles;
    }
  in
  (Json.List rows, history)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let parse_args () =
  (* Manual flag parsing: `--json` (default BENCH_gis.json) or
     `--json FILE`, `--deterministic` to zero every wall-clock
     measurement in the JSON so CI artifacts diff stably, and
     `--baseline FILE` to diff the cycle metrics of this run against a
     committed report (`--check` turns any >2% regression or missing
     metric into exit code 1 — the CI gate). Anything else is rejected
     loudly. *)
  let usage rest =
    Fmt.epr
      "usage: %s [--json [FILE]] [--deterministic] [--baseline FILE] \
       [--check] [--history FILE] [--trend] [--trend-cycles-pct P] \
       [--trend-alloc-pct P] [--trend-wall-pct P] (got: %s)@."
      Sys.argv.(0) (String.concat " " rest);
    exit 2
  in
  (* The --trend-*-pct flags override the drift-warning thresholds of
     --trend (cycles 2%, allocation 10%, wall clock 50% by default —
     pinned by test_prof). *)
  let rec go (json, det, base, chk, hist, trend, tols) = function
    | [] -> (json, det, base, chk, hist, trend, tols)
    | "--deterministic" :: rest ->
        go (json, true, base, chk, hist, trend, tols) rest
    | "--check" :: rest -> go (json, det, base, true, hist, trend, tols) rest
    | "--trend" :: rest -> go (json, det, base, chk, hist, true, tols) rest
    | ("--trend-cycles-pct" | "--trend-alloc-pct" | "--trend-wall-pct") as flag
      :: v :: rest -> (
        match float_of_string_opt v with
        | Some p when p >= 0.0 ->
            let cy, al, wa = tols in
            let tols =
              match flag with
              | "--trend-cycles-pct" -> (p /. 100.0, al, wa)
              | "--trend-alloc-pct" -> (cy, p /. 100.0, wa)
              | _ -> (cy, al, p /. 100.0)
            in
            go (json, det, base, chk, hist, trend, tols) rest
        | _ -> usage (flag :: v :: rest))
    | "--baseline" :: file :: rest when String.length file > 0 && file.[0] <> '-'
      ->
        go (json, det, Some file, chk, hist, trend, tols) rest
    | "--history" :: file :: rest when String.length file > 0 && file.[0] <> '-'
      ->
        go (json, det, base, chk, Some file, trend, tols) rest
    | "--json" :: file :: rest when String.length file > 2 && file.[0] <> '-' ->
        go (Some file, det, base, chk, hist, trend, tols) rest
    | "--json" :: rest ->
        go (Some "BENCH_gis.json", det, base, chk, hist, trend, tols) rest
    | rest -> usage rest
  in
  go
    (None, false, None, false, None, false, (0.02, 0.1, 0.5))
    (List.tl (Array.to_list Sys.argv))

let () =
  let ( json_file,
        deterministic,
        baseline_file,
        check,
        history_file,
        trend,
        (cycle_tolerance, alloc_tolerance, wall_tolerance) ) =
    parse_args ()
  in
  Metrics.enable ();
  Fmt.pr "Global Instruction Scheduling for Superscalar Machines@.";
  Fmt.pr "Bernstein & Rodeh, PLDI 1991 — benchmark reproduction@.";
  let e1_e3 = bench_figures_256 () in
  let e5 = bench_figure8 () in
  let e6 = bench_section53 () in
  let a1 = bench_width_sweep () in
  let a2 = bench_heuristics () in
  let a3 = bench_ablation () in
  let a4 = bench_webs () in
  let a5 = bench_speculation_degree () in
  let a6 = bench_profile_guided () in
  let a7 = bench_two_model () in
  let a8 = bench_duplication () in
  let m1 = bench_machine_sweep () in
  let g1 = bench_gap_bounds () in
  let a1d = bench_mem_disambiguation () in
  let r1 = bench_regalloc () in
  (* P2 must run before P1 spawns worker domains: [Gc.allocated_bytes]
     folds a terminated domain's counters into the survivors at an
     unpredictable GC point, which would land ~1MB in whichever phase
     was open when the merge happened and break byte-determinism. *)
  let p2, history_entry = bench_self_profile ~deterministic () in
  let p1 = bench_parallel_batch ~deterministic () in
  let e4 = bench_figure7 ~deterministic () in
  let report =
    Json.Obj
      [
        ( "paper",
          Json.String
            "Global Instruction Scheduling for Superscalar Machines \
             (Bernstein & Rodeh, PLDI 1991)" );
        ("E1_E3_figures_2_5_6", e1_e3);
        ("E4_figure7_compile_time", e4);
        ("E5_figure8_runtime", e5);
        ("E6_section53_safety", e6);
        ("A1_width_sweep", a1);
        ("A1_mem_disambiguation", a1d);
        ("A2_heuristic_order", a2);
        ("A3_design_ablation", a3);
        ("A4_register_webs", a4);
        ("A5_speculation_degree", a5);
        ("A6_profile_guided", a6);
        ("A7_two_model", a7);
        ("A8_duplication", a8);
        ("M1_cycles_vs_width", m1);
        ("G1_gap_to_lower_bound", g1);
        ("R1_register_allocation", r1);
        ("P1_parallel_batch", p1);
        ("P2_self_profile", p2);
        ("metrics", Metrics.to_json ~deterministic ());
      ]
  in
  (match json_file with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Json.to_string report);
      output_char oc '\n';
      close_out oc;
      Fmt.pr "@.tables written to %s@." path);
  (* --history: append one trajectory record per run; --trend compares
     the newest record against the mean of the prior window and warns.
     Warnings never gate — the hard gate is --baseline --check below;
     the trajectory catches drift that creeps in under its tolerance. *)
  (match history_file with
  | None ->
      if trend then begin
        Fmt.epr "--trend needs --history FILE@.";
        exit 2
      end
  | Some path ->
      History.append ~path history_entry;
      let entries, skipped = History.load ~path in
      List.iter (fun m -> Fmt.epr "history: skipped %s@." m) skipped;
      Fmt.pr "@.history: appended run %d to %s (total cycles %d, %s \
              allocated)@."
        (List.length entries) path
        history_entry.History.total_cycles
        (Fmt.str "%a" Fmt.byte_size history_entry.History.total_alloc_bytes);
      if trend then begin
        match
          History.trend ~cycle_tolerance ~alloc_tolerance ~wall_tolerance
            entries
        with
        | [] -> Fmt.pr "trend: no upward drift over the trailing window@."
        | drifts ->
            List.iter
              (fun d -> Fmt.pr "trend WARNING: %a@." History.pp_drift d)
              drifts
      end);
  (* --baseline: diff this run's cycle metrics against a committed
     report. Under --check, a regression beyond the 2% tolerance (or a
     metric the baseline had that this run lost) is exit code 1 — the
     CI leg runs exactly this against BENCH_gis.json. *)
  (match baseline_file with
  | None ->
      if check then begin
        Fmt.epr "--check needs --baseline FILE@.";
        exit 2
      end
  | Some path ->
      let text =
        match open_in_bin path with
        | exception Sys_error m ->
            Fmt.epr "cannot read baseline: %s@." m;
            exit 2
        | ic ->
            let n = in_channel_length ic in
            let s = really_input_string ic n in
            close_in ic;
            s
      in
      let baseline =
        match Json.of_string text with
        | Ok j -> j
        | Error m ->
            Fmt.epr "baseline %s is not valid JSON: %s@." path m;
            exit 2
      in
      let outcome = Regress.check ~baseline ~current:report () in
      Fmt.pr "@.baseline %s@.%a" path Regress.pp outcome;
      if check && not (Regress.ok outcome) then begin
        Fmt.pr "@.regression gate: FAIL@.";
        exit 1
      end;
      if check then Fmt.pr "@.regression gate: ok@.");
  Fmt.pr "@.done.@."
