(* Static schedule-legality verification demo (EXPERIMENTS.md C1).

   Part 1: run the full pipeline over minmax with the per-stage
   verification hook installed — every stage transition is certified
   against a dependence graph reconstructed independently from the
   stage's input. No simulation involved.

   Part 2: inject two illegal "schedules" by hand and show the checker
   rejecting each with a precise diagnostic: a store hoisted above its
   guarding branch (the paper's canonical unsafe speculation, §5.1),
   and two flow-dependent instructions swapped inside a block. *)

open Gis_ir
open Gis_core
module B = Builder
module C = Gis_check.Check
module D = Gis_check.Diagnostic

let () =
  (* -- Part 1: certify the pipeline's own output ---------------- *)
  Label.reset_fresh_counter ();
  let compiled = Gis_frontend.Codegen.compile_string Gis_workloads.Minmax.source in
  let cfg = compiled.Gis_frontend.Codegen.cfg in
  let prov = Gis_obs.Provenance.create () in
  let collector = C.collector ~prov ~max_speculation_degree:1 () in
  let config =
    {
      Config.speculative with
      Config.prov = Some prov;
      check = Some (C.hook collector);
    }
  in
  ignore (Pipeline.run Gis_machine.Machine.rs6k config cfg);
  let stats = C.stats collector in
  List.iter
    (fun (stage, ds) ->
      Fmt.pr "  %-13s %d findings@." stage (List.length ds))
    (C.diagnostics collector);
  Fmt.pr
    "minmax/speculative: %d stages certified, %d dependences checked, %d \
     motions classified@."
    stats.C.stages stats.C.deps_checked stats.C.motions_classified;

  (* -- Part 2a: a store hoisted above its branch ----------------- *)
  let g = Reg.Gen.create () in
  let r1 = Reg.Gen.fresh g Reg.Gpr in
  let rb = Reg.Gen.fresh g Reg.Gpr in
  let c0 = Reg.Gen.fresh g Reg.Cr in
  let pre =
    B.func ~reg_gen:g
      [
        ( "L.entry",
          [ B.li ~dst:r1 7; B.li ~dst:rb 100; B.cmpi ~dst:c0 ~lhs:r1 0 ],
          B.bt ~cr:c0 ~cond:Instr.Gt ~taken:"L.then" ~fallthru:"L.join" );
        ("L.then", [ B.store ~src:r1 ~base:rb ~offset:0 ], B.jmp "L.join");
        ("L.join", [], B.halt);
      ]
  in
  let post = Cfg.deep_copy pre in
  let bthen = Cfg.block_of_label post "L.then" in
  let store = List.hd (Gis_util.Vec.to_list bthen.Block.body) in
  ignore (Block.remove_by_uid bthen ~uid:(Instr.uid store));
  Gis_util.Vec.push (Cfg.block_of_label post "L.entry").Block.body store;
  Fmt.pr "@.injected: store hoisted from L.then into L.entry@.";
  List.iter
    (fun d -> Fmt.pr "  %a@." D.pp d)
    (C.check_stage ~stage:"global-pass1" ~pre ~post ());

  (* -- Part 2b: a flow-dependent pair swapped in place ----------- *)
  let g2 = Reg.Gen.create () in
  let a = Reg.Gen.fresh g2 Reg.Gpr in
  let b = Reg.Gen.fresh g2 Reg.Gpr in
  let pre =
    B.func ~reg_gen:g2
      [ ("L.entry", [ B.li ~dst:a 7; B.addi ~dst:b ~lhs:a 1 ], B.halt) ]
  in
  let post = Cfg.deep_copy pre in
  let blk = Cfg.block_of_label post "L.entry" in
  let i0 = Gis_util.Vec.get blk.Block.body 0 in
  let i1 = Gis_util.Vec.get blk.Block.body 1 in
  Gis_util.Vec.set blk.Block.body 0 i1;
  Gis_util.Vec.set blk.Block.body 1 i0;
  Fmt.pr "@.injected: 'addi b=a,1' reordered above 'li a,7'@.";
  List.iter
    (fun d -> Fmt.pr "  %a@." D.pp d)
    (C.check_stage ~stage:"local" ~pre ~post ())
